//! Fault-storm load test for `cloudgen-serve`.
//!
//! Trains a tiny in-process model, starts the server on an ephemeral
//! port, and storms it with concurrent clients while a deterministic
//! chaos schedule injects poisoned requests, stalled shards, mid-flight
//! kills, and transient worker faults. Asserts the server's robustness
//! contract — the process stays alive, the admission queue stays bounded,
//! and every rejection is a *typed* response — then writes latency and
//! shed-rate statistics to `BENCH_serve.json`.
//!
//! ```text
//! loadgen [--quick] [--out BENCH_serve.json]
//! ```

use bench::row;
use cloudgen::lifetimes::LifetimeHead;
use cloudgen::{
    ArrivalTarget, BatchArrivalModel, FeatureSpace, FlavorModel, GenFallback, GeneratorConfig,
    LifetimeModel, Parallelism, TokenStream, TraceGenerator, TrainConfig,
};
use glm::{DohStrategy, ElasticNet};
use obsv::{NullRecorder, Stopwatch};
use resilience::{RequestFault, RequestFaultPlan};
use serve::{fetch, Fetched, ServeConfig, ServeModel, Server};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use survival::LifetimeBins;
use synth::{CloudWorld, WorldConfig};
use trace::period::TemporalFeaturesSpec;
use trace::ObservationWindow;

/// Client-side fetch timeout — generous: the server's own deadline fires
/// first for every well-formed request.
const CLIENT_TIMEOUT_MS: u64 = 30_000;

/// Response kinds the server is allowed to emit. Anything else fails the
/// storm: an untyped failure is a robustness bug.
const KNOWN_KINDS: &[&str] = &[
    "Overloaded",
    "Draining",
    "DeadlineExceeded",
    "BudgetExhausted",
    "Cancelled",
    "TransientFault",
    "BadRequest",
    "NotFound",
];

struct Opts {
    quick: bool,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        out: "BENCH_serve.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--out" => opts.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag `{other}`; usage: loadgen [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Trains the tiny serving model (same shape as the determinism suite's).
fn build_model() -> ServeModel {
    const TRAIN_DAYS: u64 = 3;
    let world = CloudWorld::new(WorldConfig::azure_like(0.4), 17);
    let history = world.generate(TRAIN_DAYS as u32 + 1);
    let window = ObservationWindow::new(0, TRAIN_DAYS * 86_400);
    let train = window.apply_unshifted(&history);
    let bins = LifetimeBins::paper_47();
    let temporal = TemporalFeaturesSpec::new(TRAIN_DAYS as usize);
    let space = FeatureSpace::new(train.catalog.len(), bins.clone(), temporal);
    let stream = TokenStream::from_trace(&train, &bins, window.censor_at);
    let cfg = TrainConfig {
        epochs: 2,
        hidden: 16,
        ..TrainConfig::tiny()
    };
    let par = Parallelism::with_threads(2, 2);
    let generator = TraceGenerator {
        arrivals: BatchArrivalModel::fit(
            &train,
            window.end,
            ArrivalTarget::Batches,
            temporal,
            ElasticNet::ridge(1.0),
            DohStrategy::paper_default(),
        )
        .expect("arrivals"),
        fallback: Some(GenFallback::fit(&stream, &space)),
        flavors: FlavorModel::fit_par_recorded(&stream, space.clone(), cfg, par, &NullRecorder),
        lifetimes: LifetimeModel::fit_par_recorded(
            &stream,
            space.clone(),
            cfg,
            LifetimeHead::Hazard,
            par,
            &NullRecorder,
        ),
        config: GeneratorConfig::default(),
    };
    ServeModel {
        generator,
        catalog: world.catalog().clone(),
        horizon: window.end,
    }
}

/// One client-observed outcome.
struct Sample {
    status: u16,
    kind: Option<String>,
    latency_ms: f64,
}

/// The query each client sends for its `i`-th request: mostly clean
/// generations, with every chaos mode sprinkled in deterministically.
fn request_query(client: usize, i: usize) -> String {
    let k = (client * 31 + i * 7) % 16;
    match k {
        0 => "/generate?periods=288&seed=3&fault=poison&max_fallback=100000".to_string(),
        1 => "/generate?periods=288&seed=4&fault=stall:8000".to_string(),
        2 => "/generate?periods=288&seed=5&fault=kill:20".to_string(),
        3 => "/generate?periods=288&seed=6&fault=transient:1".to_string(),
        4 => "/generate?periods=288&seed=7&fault=transient:9".to_string(),
        5 => "/generate?periods=288&seed=8&deadline_ms=1".to_string(),
        6 => "/generate?periods=banana".to_string(),
        7 => "/nope".to_string(),
        _ => format!("/generate?periods=288&seed={}", 100 + k),
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let opts = parse_opts();
    let (clients, per_client) = if opts.quick { (16, 3) } else { (24, 6) };

    eprintln!("[loadgen] training tiny model...");
    let sw = Stopwatch::new();
    let model = build_model();
    eprintln!("[loadgen] model ready in {:.1}s", sw.elapsed_s());

    // Aggressive limits so the storm actually exercises shedding and the
    // watchdog: a small queue, one-second stall threshold, short retries.
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_cap: 6,
        default_deadline_ms: 15_000.0,
        max_deadline_ms: 20_000.0,
        max_retries: 2,
        retry_base_ms: 5,
        watchdog_stall_ms: 400.0,
        watchdog_tick_ms: 5,
        gen_threads: 1,
        io_timeout_ms: CLIENT_TIMEOUT_MS,
    };
    // Server-side chaos on top of the per-request `?fault=` storm: these
    // hit whichever requests land on the scheduled admission sequence
    // numbers.
    let plan = RequestFaultPlan::none()
        .on(4, RequestFault::Poisoned)
        .on(9, RequestFault::StallShard { millis: 6_000 })
        .on(13, RequestFault::KillInFlight { after_ms: 15 })
        .on(17, RequestFault::Transient { failures: 1 });
    let handle = Server::start(cfg, model, plan).expect("server start");
    let addr = handle.addr().to_string();
    eprintln!("[loadgen] storming {addr} with {clients} clients x {per_client} requests");

    let storm = Stopwatch::new();
    let mut workers = Vec::new();
    for c in 0..clients {
        let addr = addr.clone();
        workers.push(std::thread::spawn(move || {
            let mut samples = Vec::new();
            let mut io_errors = 0u64;
            for i in 0..per_client {
                let q = request_query(c, i);
                let sw = Stopwatch::new();
                match fetch(&addr, &q, CLIENT_TIMEOUT_MS) {
                    Ok(resp) => samples.push(Sample {
                        status: resp.status,
                        kind: resp.error_kind(),
                        latency_ms: sw.elapsed_ms(),
                    }),
                    Err(_) => io_errors += 1,
                }
            }
            (samples, io_errors)
        }));
    }
    let mut samples: Vec<Sample> = Vec::new();
    let mut io_errors = 0u64;
    for w in workers {
        let (s, e) = w.join().expect("client thread");
        samples.extend(s);
        io_errors += e;
    }
    let storm_ms = storm.elapsed_ms();

    // Drain under a trickle of late arrivals: they must get a typed
    // `Draining` rejection (or a shed), never hang or crash.
    handle.drain();
    let mut drain_kinds = Vec::new();
    for _ in 0..4 {
        if let Ok(resp) = fetch(&addr, "/generate?periods=288&seed=1", CLIENT_TIMEOUT_MS) {
            drain_kinds.push(resp.error_kind().unwrap_or_default());
        }
    }
    let health: Option<Fetched> = fetch(&addr, "/healthz", CLIENT_TIMEOUT_MS).ok();
    let snap = handle.join();

    // ---- Assertions: the fault-storm robustness contract. ----
    let mut failures: Vec<String> = Vec::new();
    let mut kind_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut oks = 0u64;
    for s in &samples {
        match s.status {
            200 => oks += 1,
            400 | 404 | 429 | 503 | 504 => {
                let kind = s.kind.clone().unwrap_or_default();
                if !KNOWN_KINDS.contains(&kind.as_str()) {
                    failures.push(format!(
                        "status {} carried unknown error kind `{kind}`",
                        s.status
                    ));
                }
                *kind_counts.entry(kind).or_default() += 1;
            }
            other => failures.push(format!("unexpected status {other}")),
        }
    }
    if oks == 0 {
        failures.push("no request succeeded".to_string());
    }
    if io_errors > 0 {
        // A handful of client-side timeouts is tolerable noise, but a
        // connection that dies without a typed response is the exact
        // failure mode the server exists to prevent — so more than 5%
        // fails the storm.
        eprintln!("[loadgen] note: {io_errors} client-side io errors");
        if io_errors * 20 > (samples.len() as u64 + io_errors) {
            failures.push(format!(
                "{io_errors} connections got no typed response (>5%)"
            ));
        }
    }
    for k in &drain_kinds {
        if k != "Draining" && k != "Overloaded" {
            failures.push(format!("post-drain request got `{k}`, not Draining"));
        }
    }
    if health.is_some_and(|h| h.status != 200) {
        failures.push("healthz failed during drain".to_string());
    }
    if snap.latency_count == 0 {
        failures.push("server recorded no request latencies".to_string());
    }
    let accepted = snap.counter("serve.accepted").max(1);
    let shed_rate = snap.counter("serve.shed") as f64 / accepted as f64;

    // ---- Client-side latency quantiles. ----
    let mut lat: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
    lat.sort_by(f64::total_cmp);
    let (c50, c95, c99) = (
        percentile(&lat, 0.50),
        percentile(&lat, 0.95),
        percentile(&lat, 0.99),
    );

    row("requests", &[format!("{}", samples.len())]);
    row("ok", &[format!("{oks}")]);
    row("shed-rate", &[format!("{:.3}", shed_rate)]);
    row("client p50/p95/p99", &[format!("{c50:.0}/{c95:.0}/{c99:.0} ms")]);
    row(
        "server p50/p95/p99",
        &[format!(
            "{:.0}/{:.0}/{:.0} ms",
            snap.latency_p50_ms, snap.latency_p95_ms, snap.latency_p99_ms
        )],
    );
    for (k, n) in &kind_counts {
        row(&format!("typed {k}"), &[format!("{n}")]);
    }

    // ---- BENCH_serve.json (hand-rolled: stable, dependency-free). ----
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema_version\": 1,");
    let _ = writeln!(json, "  \"bench\": \"cloudgen_serve_loadgen\",");
    let _ = writeln!(json, "  \"quick\": {},", opts.quick);
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"requests\": {},", samples.len());
    let _ = writeln!(json, "  \"storm_wall_ms\": {storm_ms:.1},");
    let _ = writeln!(json, "  \"ok\": {oks},");
    let _ = writeln!(json, "  \"client_io_errors\": {io_errors},");
    let _ = writeln!(json, "  \"shed_rate\": {shed_rate:.4},");
    let _ = writeln!(json, "  \"client_latency_ms\": {{");
    let _ = writeln!(json, "    \"p50\": {c50:.2}, \"p95\": {c95:.2}, \"p99\": {c99:.2}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"server_latency_ms\": {{");
    let _ = writeln!(
        json,
        "    \"p50\": {:.2}, \"p95\": {:.2}, \"p99\": {:.2}",
        snap.latency_p50_ms, snap.latency_p95_ms, snap.latency_p99_ms
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"typed_responses\": {{");
    let kinds: Vec<String> = kind_counts
        .iter()
        .map(|(k, n)| format!("    \"{k}\": {n}"))
        .collect();
    let _ = writeln!(json, "{}", kinds.join(",\n"));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"server_counters\": {{");
    let counters: Vec<String> = snap
        .counters
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v}"))
        .collect();
    let _ = writeln!(json, "{}", counters.join(",\n"));
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write(&opts.out, json).expect("write report");
    eprintln!("[loadgen] report: {}", opts.out);

    if !failures.is_empty() {
        eprintln!("[loadgen] FAULT-STORM CONTRACT VIOLATIONS:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    eprintln!("[loadgen] ok: server survived the storm with typed responses only");
}
