//! `cloudgen-bench` — the continuous benchmark harness.
//!
//! ```text
//! cloudgen-bench run  [--out report.json] [--quick] [--threads N]
//!                     [--profile-trace prof.json]
//! cloudgen-bench compare BASELINE.json CANDIDATE.json [--threshold 0.3]
//! cloudgen-bench list
//! ```
//!
//! `run` executes the kernel benches (gemm, lstm-fwd, lstm-bwd, adam-step,
//! with GFLOP/s from the profiling layer's work accounting) and the stage
//! benches (train, generate, pack, with domain throughput), then writes a
//! schema-versioned JSON report. `--quick` cuts iteration counts for CI
//! smoke runs. `--profile-trace` additionally records a hierarchical
//! Chrome trace of one profiled pass over the suite.
//!
//! `compare` diffs two reports and exits nonzero (code 1) if any benchmark
//! slowed past `--threshold` (default 0.30 = 30%) beyond trial noise —
//! the regression gate CI runs against a stored baseline.

#![forbid(unsafe_code)]

use bench::continuous::{bench_names, compare, run_benches, BenchOpts, BenchReport};
use std::process::ExitCode;

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn cmd_run(args: &[String]) -> ExitCode {
    let opts = BenchOpts {
        quick: flag(args, "--quick"),
        threads: opt_value(args, "--threads")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1),
    };
    let out_path = opt_value(args, "--out").unwrap_or_else(|| "BENCH_continuous.json".to_string());
    let trace_path = opt_value(args, "--profile-trace");

    eprintln!(
        "cloudgen-bench run: quick={}, threads={}",
        opts.quick, opts.threads
    );
    let report = if let Some(tp) = &trace_path {
        // Profiled pass: the whole suite runs inside one trace session, so
        // the Chrome trace shows every bench's span tree and worker lanes.
        let profiler = obsv::Profiler::new();
        let report = {
            let _act = profiler.activate("bench-main");
            run_benches(opts, |m| eprintln!("  [bench] {m}"))
        };
        if let Err(e) = profiler.write_chrome_trace(tp) {
            eprintln!("cloudgen-bench: cannot write {tp}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("  profile trace: {tp}");
        report
    } else {
        run_benches(opts, |m| eprintln!("  [bench] {m}"))
    };

    for e in &report.results {
        let extra = match (e.gflops, e.throughput) {
            (Some(g), Some(t)) => format!(
                ", {g:.2} GFLOP/s, {t:.0} {}",
                e.throughput_unit.as_deref().unwrap_or("units/sec")
            ),
            (Some(g), None) => format!(", {g:.2} GFLOP/s"),
            (None, Some(t)) => format!(
                ", {t:.0} {}",
                e.throughput_unit.as_deref().unwrap_or("units/sec")
            ),
            (None, None) => String::new(),
        };
        eprintln!(
            "  {:<10} {:>10.3} ms ±{:.3}{extra}",
            e.name, e.wall_ms_median, e.wall_ms_mad
        );
    }

    let json = report.to_json_string();
    // Self-check: the report we write must parse and validate under the
    // same loader `compare` uses.
    if let Err(e) = BenchReport::from_json_str(&json) {
        eprintln!("cloudgen-bench: generated report fails validation: {e}");
        return ExitCode::from(2);
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cloudgen-bench: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    eprintln!("  wrote {out_path}");
    ExitCode::SUCCESS
}

fn load_report(path: &str) -> Result<BenchReport, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    BenchReport::from_json_str(&raw).map_err(|e| format!("{path}: {e}"))
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let positional: Vec<&String> = args
        .iter()
        .take_while(|a| !a.starts_with("--"))
        .collect();
    let [baseline_path, candidate_path] = positional[..] else {
        eprintln!("usage: cloudgen-bench compare BASELINE.json CANDIDATE.json [--threshold 0.3]");
        return ExitCode::from(2);
    };
    let threshold: f64 = match opt_value(args, "--threshold") {
        None => 0.30,
        Some(v) => match v.parse() {
            Ok(t) => t,
            Err(_) => {
                eprintln!("cloudgen-bench: --threshold {v:?} is not a number");
                return ExitCode::from(2);
            }
        },
    };
    let (baseline, candidate) = match (load_report(baseline_path), load_report(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("cloudgen-bench: {r}");
            }
            return ExitCode::from(2);
        }
    };
    match compare(&baseline, &candidate, threshold) {
        Err(e) => {
            eprintln!("cloudgen-bench: {e}");
            ExitCode::from(2)
        }
        Ok(regs) if regs.is_empty() => {
            eprintln!(
                "cloudgen-bench: no regressions past {:.0}% across {} benchmarks",
                threshold * 100.0,
                baseline.results.len()
            );
            ExitCode::SUCCESS
        }
        Ok(regs) => {
            for r in &regs {
                if r.new_ms.is_nan() {
                    eprintln!("REGRESSION {}: missing from candidate report", r.name);
                } else {
                    eprintln!(
                        "REGRESSION {}: {:.3} ms -> {:.3} ms (allowed {:.3} ms at {:.0}%)",
                        r.name,
                        r.old_ms,
                        r.new_ms,
                        r.allowed_ms,
                        threshold * 100.0
                    );
                }
            }
            ExitCode::from(1)
        }
    }
}

fn cmd_list() -> ExitCode {
    for (name, kind) in bench_names() {
        println!("{name:<10} {kind}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "run" => cmd_run(rest),
        Some((cmd, rest)) if cmd == "compare" => cmd_compare(rest),
        Some((cmd, _)) if cmd == "list" => cmd_list(),
        _ => {
            eprintln!(
                "usage:\n  cloudgen-bench run [--out report.json] [--quick] [--threads N] \
                 [--profile-trace prof.json]\n  cloudgen-bench compare BASELINE.json \
                 CANDIDATE.json [--threshold 0.3]\n  cloudgen-bench list"
            );
            ExitCode::from(2)
        }
    }
}
