//! Table 3 reproduction: lifetime prediction (BCE and 1-Best-Err) for
//! CoinFlip, overall KM, per-flavor KM, RepeatLifetime, and the LSTM, on
//! both clouds. Also prints the §5.3 censoring-policy ablation (drop
//! censored VMs vs. treating censoring as termination).
//!
//! Paper shape: LSTM ≪ RepeatLifetime < per-flavor KM < overall KM <
//! CoinFlip on 1-Best-Err; LSTM ≪ per-flavor KM ≤ overall KM < CoinFlip on
//! BCE; the censored-as-terminated KM stays close to the censoring-aware KM
//! when the censored fraction is small.

use bench::{fmt_opt, pct, row, CloudSetup};
use cloudgen::LifetimeBaseline;
use survival::CensoringPolicy;

fn run(setup: &CloudSetup) {
    println!("\n=== Table 3 ({}) ===", setup.name);
    println!(
        "test jobs: {} ({:.1}% censored)",
        setup.test.len(),
        setup.test.censored_fraction() * 100.0
    );

    let sp = &setup.space;
    let aware = CensoringPolicy::CensoringAware;
    let coin = LifetimeBaseline::CoinFlip.evaluate(&setup.test_stream, sp);
    let overall = LifetimeBaseline::overall_km(&setup.train_stream, sp, aware)
        .evaluate(&setup.test_stream, sp);
    let per_flavor = LifetimeBaseline::per_flavor_km(&setup.train_stream, sp, aware)
        .evaluate(&setup.test_stream, sp);
    let repeat = LifetimeBaseline::repeat_lifetime(&setup.train_stream, sp, aware)
        .evaluate(&setup.test_stream, sp);

    let model = &setup.fit_generator_cached().lifetimes;
    let lstm = model.evaluate(&setup.test_stream);

    row("System", &["BCE".into(), "1-Best-Err".into()]);
    row("CoinFlip", &[fmt_opt(coin.bce, 3), pct(coin.one_best_err)]);
    row(
        "Overall KM",
        &[fmt_opt(overall.bce, 3), pct(overall.one_best_err)],
    );
    row(
        "Per-flavor KM",
        &[fmt_opt(per_flavor.bce, 3), pct(per_flavor.one_best_err)],
    );
    row(
        "RepeatLifetime",
        &[fmt_opt(repeat.bce, 3), pct(repeat.one_best_err)],
    );
    row("LSTM", &[fmt_opt(lstm.bce, 3), pct(lstm.one_best_err)]);

    let bce_ok = lstm.bce.unwrap() < per_flavor.bce.unwrap()
        && per_flavor.bce.unwrap() <= overall.bce.unwrap() + 1e-9
        && overall.bce.unwrap() < coin.bce.unwrap();
    println!(
        "shape check BCE (LSTM < per-flavor KM <= overall KM < CoinFlip): {}",
        if bce_ok { "PASS" } else { "DIVERGES" }
    );
    let one_best_ok = lstm.one_best_err < repeat.one_best_err
        && repeat.one_best_err < per_flavor.one_best_err.min(overall.one_best_err);
    // At reduced scale the LSTM's argmax can trail the repeat heuristic by a
    // few points even while dominating every probabilistic metric; report
    // a near-miss distinctly (see EXPERIMENTS.md).
    let near = lstm.one_best_err < repeat.one_best_err + 0.06
        && lstm.one_best_err < per_flavor.one_best_err;
    println!(
        "shape check 1-Best (LSTM < RepeatLifetime < KM baselines): {}",
        if one_best_ok {
            "PASS"
        } else if near {
            "NEAR (LSTM within a few points of RepeatLifetime, far below KM)"
        } else {
            "DIVERGES"
        }
    );

    // §5.3 censoring ablation.
    println!("\ncensoring-policy ablation (overall KM, BCE):");
    for (label, policy) in [
        ("censoring-aware", CensoringPolicy::CensoringAware),
        ("drop-censored", CensoringPolicy::DropCensored),
        ("censored-as-term", CensoringPolicy::CensoredAsTerminated),
    ] {
        let eval = LifetimeBaseline::overall_km(&setup.train_stream, sp, policy)
            .evaluate(&setup.test_stream, sp);
        row(label, &[fmt_opt(eval.bce, 4), pct(eval.one_best_err)]);
    }
}

fn main() {
    if bench::run_cloud("azure") {
        run(&CloudSetup::azure());
    }
    if bench::run_cloud("huawei") {
        run(&CloudSetup::huawei());
    }
}
