//! Table 4 reproduction: continuous-domain Survival-MSE on the Azure-like
//! test data, ablating bin count (47 vs 495) and interpolation (Stepped vs
//! CDI), plus continuous-time Kaplan–Meier.
//!
//! Paper shape: bin count and interpolation barely move the KM score; CDI
//! helps the LSTM; the LSTM roughly halves the MSE of every KM variant —
//! "the benefits of using an LSTM far exceed the drawbacks of
//! discretization".

use bench::{row, CloudSetup};
use survival::interp::ContinuousSurvival;
use survival::metrics::{survival_mse_one, uniform_grid, TrueLifetime};
use survival::{
    CensoringPolicy, ContinuousKm, Interpolation, KaplanMeier, LifetimeBins, Observation,
};
use trace::Trace;

const HORIZON: f64 = 25.0 * 86_400.0;
const TAIL: f64 = 40.0 * 86_400.0;

fn truths(test: &Trace, censor_at: u64) -> Vec<TrueLifetime> {
    test.jobs
        .iter()
        .map(|j| TrueLifetime {
            duration: j.observed_duration(censor_at) as f64,
            censored: j.is_censored(),
        })
        .collect()
}

fn km_hazard(train: &Trace, censor_at: u64, bins: &LifetimeBins) -> Vec<f64> {
    let obs: Vec<Observation> = train
        .jobs
        .iter()
        .map(|j| Observation {
            bin: bins.bin_of(j.observed_duration(censor_at) as f64),
            censored: j.is_censored(),
        })
        .collect();
    KaplanMeier::fit(bins, &obs, CensoringPolicy::CensoringAware, 0.0)
        .expect("bins in range")
        .hazard()
        .to_vec()
}

/// Survival-MSE when every job shares one predicted curve.
fn mse_shared(curve: &ContinuousSurvival, truths: &[TrueLifetime], grid: &[f64]) -> f64 {
    let mut sse = 0.0;
    let mut n = 0usize;
    for &t in truths {
        let (s, c) = survival_mse_one(curve, t, grid);
        sse += s;
        n += c;
    }
    sse / n.max(1) as f64
}

/// Survival-MSE against the continuous KM (evaluated directly).
fn mse_continuous_km(km: &ContinuousKm, truths: &[TrueLifetime], grid: &[f64]) -> f64 {
    let mut sse = 0.0;
    let mut n = 0usize;
    for &t in truths {
        for &g in grid {
            if t.censored && g > t.duration {
                continue;
            }
            let true_s = if g < t.duration { 1.0 } else { 0.0 };
            let d = km.eval(g) - true_s;
            sse += d * d;
            n += 1;
        }
    }
    sse / n.max(1) as f64
}

fn main() {
    let setup = CloudSetup::azure();
    println!(
        "=== Table 4 (azure test window, {} jobs) ===",
        setup.test.len()
    );
    let grid = uniform_grid(HORIZON, 151);
    let truths = truths(&setup.test, setup.test_window.censor_at);

    let bins47 = LifetimeBins::paper_47();
    let bins495 = LifetimeBins::fine_495();

    row(
        "System",
        &["Bins".into(), "Interp".into(), "Survival-MSE".into()],
    );

    let mut km_scores = Vec::new();
    for (bins, nb) in [(&bins47, "47"), (&bins495, "495")] {
        let hazard = km_hazard(&setup.train, setup.train_window.censor_at, bins);
        for interp in [Interpolation::Stepped, Interpolation::Cdi] {
            let curve = ContinuousSurvival::from_hazard(bins, &hazard, interp, TAIL);
            let mse = mse_shared(&curve, &truths, &grid);
            km_scores.push(mse);
            row(
                "KM",
                &[
                    nb.into(),
                    format!("{interp:?}"),
                    format!("{:.3}%", mse * 100.0),
                ],
            );
        }
    }

    // Continuous-time KM fitted on exact train durations.
    let obs: Vec<(f64, bool)> = setup
        .train
        .jobs
        .iter()
        .map(|j| {
            (
                j.observed_duration(setup.train_window.censor_at) as f64,
                j.is_censored(),
            )
        })
        .collect();
    let km_cont = ContinuousKm::fit(&obs).expect("durations are finite");
    let mse_cont = mse_continuous_km(&km_cont, &truths, &grid);
    row(
        "KM",
        &[
            "Continuous".into(),
            "N/A".into(),
            format!("{:.3}%", mse_cont * 100.0),
        ],
    );

    // LSTM (47 bins), both interpolations, per-job teacher-forced hazards.
    // The stream's job order is organize_periods order; rebuild the same
    // order over the test trace to align exact durations with the hazards.
    let stream_truths: Vec<TrueLifetime> = trace::batch::organize_periods(&setup.test)
        .iter()
        .flat_map(|p| p.batches.iter().flat_map(|b| b.jobs.iter()))
        .map(|&idx| {
            let j = &setup.test.jobs[idx];
            TrueLifetime {
                duration: j.observed_duration(setup.test_window.censor_at) as f64,
                censored: j.is_censored(),
            }
        })
        .collect();
    let model = &setup.fit_generator_cached().lifetimes;
    let hazards = model.predict_hazards(&setup.test_stream);
    assert_eq!(hazards.len(), stream_truths.len(), "alignment mismatch");
    let mut lstm_scores = Vec::new();
    for interp in [Interpolation::Stepped, Interpolation::Cdi] {
        let mut sse = 0.0;
        let mut n = 0usize;
        for (h, &t) in hazards.iter().zip(&stream_truths) {
            let curve = ContinuousSurvival::from_hazard(&bins47, h, interp, TAIL);
            let (s, c) = survival_mse_one(&curve, t, &grid);
            sse += s;
            n += c;
        }
        let mse = sse / n.max(1) as f64;
        lstm_scores.push(mse);
        row(
            "LSTM",
            &[
                "47".into(),
                format!("{interp:?}"),
                format!("{:.3}%", mse * 100.0),
            ],
        );
    }

    let km_best = km_scores
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min)
        .min(mse_cont);
    let lstm_best = lstm_scores.iter().cloned().fold(f64::INFINITY, f64::min);
    let km_spread = km_scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - km_scores.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "shape check (LSTM clearly below every KM variant; KM variants close together): {}",
        if lstm_best < km_best * 0.85 && km_spread < km_best * 0.5 {
            "PASS"
        } else {
            "DIVERGES"
        }
    );
    println!(
        "note: LSTM CDI <= LSTM Stepped expected: {}",
        if lstm_scores[1] <= lstm_scores[0] + 1e-9 {
            "yes"
        } else {
            "no"
        }
    );
}
