//! Figure 6 reproduction: modeling *individual* VM arrivals with a Poisson
//! regression badly underestimates arrival variance, unlike the batch model.
//!
//! Paper shape: 90 % interval coverage of true VM arrivals is far below 90 %
//! for the per-VM Poisson (18 % Azure / 52.9 % Huawei without DOH), improves
//! somewhat with DOH sampling, and the batch-based model (Figs. 4/5) is the
//! better fit.

use bench::{n_samples, pct, row, CloudSetup};
use cloudgen::{ArrivalTarget, BatchArrivalModel};
use eval::{coverage, render_band_chart, PredictionBand};
use glm::samplers::sample_poisson;
use glm::{DohStrategy, ElasticNet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use trace::batch::{job_counts, organize_periods};
use trace::period::TemporalFeaturesSpec;

fn band_coverage(
    model: &BatchArrivalModel,
    actual: &[f64],
    first: u64,
    samples: usize,
    seed: u64,
) -> (PredictionBand, f64) {
    let n = actual.len() as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut series: Vec<Vec<f64>> = vec![Vec::with_capacity(n as usize); samples];
    for p in first..first + n {
        for s in series.iter_mut() {
            let day = model.sample_doh_day(&mut rng);
            s.push(sample_poisson(model.rate(p, Some(day)), &mut rng) as f64);
        }
    }
    let band = PredictionBand::from_samples(&series, 0.05, 0.95);
    let cov = coverage(&band, actual);
    (band, cov)
}

fn run(setup: &CloudSetup) {
    println!("\n=== Figure 6 ({}) ===", setup.name);
    let first = setup.test_first_period();
    let n = setup.test_n_periods();
    let periods = organize_periods(&setup.test);
    let actual = job_counts(&periods, first + n)[first as usize..].to_vec();
    let samples = n_samples();

    // Per-VM Poisson, no DOH (the traditional baseline).
    let no_doh = BatchArrivalModel::fit(
        &setup.train,
        setup.train_window.end,
        ArrivalTarget::Jobs,
        TemporalFeaturesSpec::without_doh(),
        ElasticNet::ridge(1.0),
        DohStrategy::LastDay,
    )
    .expect("fit");
    let (band, cov) = band_coverage(&no_doh, &actual, first, samples, 0x66);
    row("VM Poisson", &[format!("coverage {}", pct(cov))]);
    print!(
        "{}",
        render_band_chart(
            &actual,
            &band.lo,
            &band.median,
            &band.hi,
            100,
            12,
            "individual VM arrivals / period (no DOH)"
        )
    );

    // Per-VM Poisson with sampled DOH days.
    let with_doh = BatchArrivalModel::fit(
        &setup.train,
        setup.train_window.end,
        ArrivalTarget::Jobs,
        setup.space.temporal,
        ElasticNet::ridge(1.0),
        DohStrategy::paper_default(),
    )
    .expect("fit");
    let (_, cov_doh) = band_coverage(&with_doh, &actual, first, samples, 0x67);
    row("VM Poisson+DOH", &[format!("coverage {}", pct(cov_doh))]);

    println!(
        "shape check (per-VM Poisson coverage well below 90%): {}",
        if cov < 0.8 { "PASS" } else { "DIVERGES" }
    );
}

fn main() {
    println!("samples per generator: {}", n_samples());
    if bench::run_cloud("azure") {
        run(&CloudSetup::azure());
    }
    if bench::run_cloud("huawei") {
        run(&CloudSetup::huawei());
    }
}
