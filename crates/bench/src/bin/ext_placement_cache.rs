//! Extension experiment: Protean-style placement-rule caching.
//!
//! Hadary et al. cache placement evaluation logic per VM type; the memory
//! footprint needed for a target hit rate is set by the workload's reuse
//! behaviour (§6.2). This binary sweeps an LRU placement cache over actual
//! and generated traces: traces with too little reuse (Naive) make the
//! required cache look far larger than it really is; traces with too much
//! reuse (SimpleBatch on the many-flavor cloud) make it look smaller.

use bench::{n_samples, row, sample_traces, CloudSetup};
use sched::{cache_hit_rate, capacity_for_hit_rate};
use trace::Trace;

const TARGET: f64 = 0.9;

fn mean_hit_rates(traces: &[Trace], caps: &[usize]) -> Vec<f64> {
    let mut out = vec![0.0; caps.len()];
    for t in traces {
        for (o, &c) in out.iter_mut().zip(caps) {
            *o += cache_hit_rate(t, c) / traces.len() as f64;
        }
    }
    out
}

fn run(setup: &CloudSetup) {
    println!("\n=== Extension: placement-cache sizing ({}) ===", setup.name);
    let first = setup.test_first_period();
    let n = setup.test_n_periods();
    let samples = n_samples().min(30);
    let catalog = setup.world.catalog();
    let k = catalog.len();
    let caps: Vec<usize> = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 259]
        .iter()
        .copied()
        .filter(|&c| c <= k.max(16))
        .collect();

    let lstm = setup.fit_generator_cached();
    let naive = setup.fit_naive();
    let simple = setup.fit_simple_batch();

    let actual_need = capacity_for_hit_rate(&setup.test, &caps, TARGET);
    let actual_curve: Vec<f64> = caps.iter().map(|&c| cache_hit_rate(&setup.test, c)).collect();

    row(
        "Trace",
        &[format!("cache for {:.0}% hits", TARGET * 100.0), "hit@4".into(), "hit@16".into()],
    );
    let hit_at = |curve: &[f64], cap: usize| -> String {
        caps.iter()
            .position(|&c| c == cap)
            .map(|i| format!("{:.1}%", curve[i] * 100.0))
            .unwrap_or_default()
    };
    row(
        "Actual",
        &[
            actual_need.map_or(">max".into(), |c| c.to_string()),
            hit_at(&actual_curve, 4),
            hit_at(&actual_curve, 16),
        ],
    );

    for (label, which) in [("Naive", 0usize), ("SimpleBatch", 1), ("LSTM", 2)] {
        let traces = sample_traces(samples, 0xCAC + which as u64, |rng| match which {
            0 => naive.generate(first, n, catalog, rng),
            1 => simple.generate(first, n, catalog, rng),
            _ => lstm.generate(first, n, catalog, rng),
        });
        let curve = mean_hit_rates(&traces, &caps);
        let need = caps
            .iter()
            .zip(&curve)
            .find(|(_, &h)| h >= TARGET)
            .map(|(&c, _)| c);
        row(
            label,
            &[
                need.map_or(">max".into(), |c| c.to_string()),
                hit_at(&curve, 4),
                hit_at(&curve, 16),
            ],
        );
    }
    println!("(cache sizes in flavor-rule entries; sweep capped at the catalog size)");
}

fn main() {
    println!("samples per generator: {}", n_samples());
    if bench::run_cloud("azure") {
        run(&CloudSetup::azure());
    }
    if bench::run_cloud("huawei") {
        run(&CloudSetup::huawei());
    }
}
