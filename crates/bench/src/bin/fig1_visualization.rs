//! Figure 1 reproduction: a terminal rendering of workload structure.
//!
//! Each row is one 5-minute period; each job is drawn as a run of letters
//! (the letter encodes the flavor, the run length the lifetime bin, coarsely
//! compressed); batches are separated by spaces. Real traces and LSTM traces
//! show user batches with homogeneous flavors/lifetimes and bursty rows;
//! Naive traces are fine-grained confetti.

use bench::CloudSetup;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trace::batch::organize_periods;
use trace::Trace;

const ROWS: usize = 24;
const MAX_COLS: usize = 110;

fn glyph(flavor: u16) -> char {
    let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    alphabet
        .chars()
        .nth(flavor as usize % alphabet.len())
        .expect("non-empty alphabet")
}

fn width_for(duration: u64) -> usize {
    // Compress lifetime non-linearly into 1..=6 glyph repeats.
    match duration {
        0..=900 => 1,
        901..=3_600 => 2,
        3_601..=21_600 => 3,
        21_601..=86_400 => 4,
        86_401..=604_800 => 5,
        _ => 6,
    }
}

fn render(trace: &Trace, censor_at: u64, first_period: u64, label: &str) {
    println!("\n--- {label} ---");
    let periods = organize_periods(trace);
    let mut drawn = 0usize;
    for p in periods.iter().skip_while(|p| p.period < first_period) {
        if drawn >= ROWS {
            break;
        }
        let mut line = String::new();
        'batches: for batch in &p.batches {
            for &idx in &batch.jobs {
                let job = &trace.jobs[idx];
                let w = width_for(job.observed_duration(censor_at));
                for _ in 0..w {
                    line.push(glyph(job.flavor.0));
                    if line.len() >= MAX_COLS {
                        line.push('…');
                        break 'batches;
                    }
                }
            }
            line.push(' ');
        }
        println!("p{:>6} |{}", p.period, line.trim_end());
        drawn += 1;
    }
}

fn main() {
    let setup = CloudSetup::azure();
    let first = setup.test_first_period();
    let n = ROWS as u64 + 12;
    let catalog = setup.world.catalog();

    render(
        &setup.test,
        setup.test_window.censor_at,
        first,
        "real trace (ground-truth world, test window)",
    );

    let naive = setup.fit_naive();
    let mut rng = StdRng::seed_from_u64(0x111);
    let naive_trace = naive.generate(first, n, catalog, &mut rng);
    render(&naive_trace, u64::MAX, first, "Naive-generated workload");

    let lstm = setup.fit_generator_cached();
    let mut rng = StdRng::seed_from_u64(0x222);
    let lstm_trace = lstm.generate(first, n, catalog, &mut rng);
    render(
        &lstm_trace,
        u64::MAX,
        first,
        "LSTM-generated workload (our approach)",
    );

    println!("\nReading the figure: letters = flavors, run length = lifetime bin, spaces = batch");
    println!("boundaries. Real and LSTM rows show homogeneous user batches and bursty arrival");
    println!("rates; the Naive rows are independent confetti.");
}
