//! Ablation (§2.3.1): hazard-function vs PMF parameterization of the
//! lifetime network.
//!
//! Kvamme & Borgan report the hazard parameterization works "slightly
//! better" than the PMF for feed-forward survival networks; the paper adopts
//! the hazard head. This binary trains both heads with identical budgets on
//! the Azure-like world and compares BCE / 1-Best-Err on the test window.

use bench::{fmt_opt, pct, row, CloudSetup};
use cloudgen::lifetimes::{LifetimeHead, LifetimeModel};

fn main() {
    let setup = CloudSetup::azure();
    println!("=== Ablation: lifetime output head (azure) ===");
    let cfg = setup.train_config();
    row("Head", &["BCE".into(), "1-Best-Err".into()]);
    let mut results = Vec::new();
    for head in [LifetimeHead::Hazard, LifetimeHead::Pmf] {
        let model =
            LifetimeModel::fit_with_head(&setup.train_stream, setup.space.clone(), cfg, head);
        let eval = model.evaluate(&setup.test_stream);
        row(
            &format!("{head:?}"),
            &[fmt_opt(eval.bce, 4), pct(eval.one_best_err)],
        );
        results.push(eval);
    }
    let (hazard, pmf) = (&results[0], &results[1]);
    println!(
        "shape check (both heads learn; hazard within 10% of PMF or better on BCE): {}",
        if hazard.bce.unwrap() <= pmf.bce.unwrap() * 1.1 {
            "PASS"
        } else {
            "DIVERGES"
        }
    );
}
