//! Ablation (footnote 5): what-if batch-size manipulation by scaling the
//! EOB token probability at sampling time, without retraining.
//!
//! Expectation: `eob_scale > 1` shrinks mean batch size, `< 1` grows it;
//! total batch count per period is unchanged (stage 1 controls it), so job
//! volume moves with batch size. The paper flags an open question — whether
//! such post-processing degrades properties like reuse distance — so the
//! reuse L1 distance to the unscaled run is reported too.

use bench::{n_samples, row, sample_traces, CloudSetup};
use sched::reuse_distance_histogram;
use trace::batch::organize_periods;

fn main() {
    let setup = CloudSetup::azure();
    let mut generator = setup.fit_generator_cached();
    let first = setup.test_first_period();
    let n = setup.test_n_periods().min(288);
    let samples = n_samples().min(20);
    let catalog = setup.world.catalog();

    println!("=== What-if: EOB probability scaling (azure, {samples} samples) ===");
    row(
        "eob_scale",
        &[
            "mean batch".into(),
            "jobs/period".into(),
            "reuse L1 vs 1.0".into(),
        ],
    );

    let mut baseline_reuse: Option<[f64; 7]> = None;
    for &scale in &[1.0, 0.5, 2.0] {
        generator.config.eob_scale = scale;
        let traces = sample_traces(samples, 0xE0B + (scale * 10.0) as u64, |rng| {
            generator.generate(first, n, catalog, rng)
        });
        let mut batch_sizes = 0.0;
        let mut batches = 0usize;
        let mut jobs = 0usize;
        let mut reuse = [0.0; 7];
        for t in &traces {
            jobs += t.len();
            for p in organize_periods(t) {
                for b in &p.batches {
                    batch_sizes += b.len() as f64;
                    batches += 1;
                }
            }
            let p = reuse_distance_histogram(t).proportions();
            for i in 0..7 {
                reuse[i] += p[i] / traces.len() as f64;
            }
        }
        // lint:allow(float-eq): scale takes exact literal values from the ablation list
        if scale == 1.0 {
            baseline_reuse = Some(reuse);
        }
        let l1: f64 = baseline_reuse
            .map(|b| (0..7).map(|i| (reuse[i] - b[i]).abs()).sum())
            .unwrap_or(f64::NAN);
        row(
            &format!("{scale}"),
            &[
                format!("{:.2}", batch_sizes / batches.max(1) as f64),
                format!("{:.2}", jobs as f64 / (n as f64 * samples as f64)),
                // lint:allow(float-eq): scale takes exact literal values from the ablation list
        if scale == 1.0 {
                    "0.000 (ref)".into()
                } else {
                    format!("{l1:.3}")
                },
            ],
        );
    }
    println!("note: the scale-1.0 reference row runs first.");
}
