//! Diagnostic: split lifetime 1-best error by position-in-batch for the
//! LSTM vs RepeatLifetime (not a paper experiment; a tuning aid).

use bench::CloudSetup;
use survival::funcs::{hazard_to_pmf, pmf_argmax};
use survival::CensoringPolicy;

fn main() {
    let setup = CloudSetup::azure();
    let model = &setup.fit_generator_cached().lifetimes;
    let hazards = model.predict_hazards(&setup.test_stream);

    let overall = cloudgen::LifetimeBaseline::overall_km(
        &setup.train_stream,
        &setup.space,
        CensoringPolicy::CensoringAware,
    );
    let fallback = match &overall {
        cloudgen::LifetimeBaseline::OverallKm { km } => pmf_argmax(&km.pmf()),
        _ => unreachable!(),
    };

    let mut stats = [[0usize; 2]; 2]; // [is_start][errors] with counts in [is_start][1]
    let mut repeat_stats = [[0usize; 2]; 2];
    let mut dist_sum = 0.0;
    let mut dist_n = 0usize;
    for (i, step) in setup.test_stream.jobs.iter().enumerate() {
        if step.censored {
            continue;
        }
        let is_start = usize::from(step.pos_in_batch == 0);
        let pred = pmf_argmax(&hazard_to_pmf(&hazards[i]));
        stats[is_start][1] += 1;
        if pred != step.bin {
            stats[is_start][0] += 1;
            dist_sum += (pred as f64 - step.bin as f64).abs();
            dist_n += 1;
        }
        let rpred = if is_start == 1 {
            fallback
        } else {
            setup.test_stream.jobs[i - 1].bin
        };
        repeat_stats[is_start][1] += 1;
        if rpred != step.bin {
            repeat_stats[is_start][0] += 1;
        }
    }
    // Fine-grained in-batch split: pure copies vs divergent jobs.
    let mut copy = [0usize; 2]; // [errors, total] among cur == prev
    let mut diverge = [0usize; 2]; // among cur != prev
    let mut diverge_anchor_hits = 0usize;
    let mut anchor_bin = 0usize;
    let mut copy_miss_bins: Vec<(usize, usize)> = Vec::new();
    for (i, step) in setup.test_stream.jobs.iter().enumerate() {
        if step.pos_in_batch == 0 {
            anchor_bin = step.bin;
            continue;
        }
        if step.censored {
            continue;
        }
        let prev = &setup.test_stream.jobs[i - 1];
        let pred = pmf_argmax(&hazard_to_pmf(&hazards[i]));
        if !prev.censored && prev.bin == step.bin {
            copy[1] += 1;
            if pred != step.bin {
                copy[0] += 1;
                copy_miss_bins.push((step.bin, pred));
            }
        } else {
            diverge[1] += 1;
            if pred != step.bin {
                diverge[0] += 1;
            }
            if pred == anchor_bin {
                diverge_anchor_hits += 1;
            }
        }
    }
    println!(
        "pure copies: LSTM err {:.1}% ({}/{}); divergent: err {:.1}% ({}/{}), predicted anchor {:.1}%",
        100.0 * copy[0] as f64 / copy[1].max(1) as f64, copy[0], copy[1],
        100.0 * diverge[0] as f64 / diverge[1].max(1) as f64, diverge[0], diverge[1],
        100.0 * diverge_anchor_hits as f64 / diverge[1].max(1) as f64,
    );
    let mut hist = std::collections::BTreeMap::new();
    for &(true_bin, pred) in &copy_miss_bins {
        *hist.entry((true_bin, pred)).or_insert(0usize) += 1;
    }
    let mut top: Vec<_> = hist.into_iter().collect();
    top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("top copy-miss (true_bin -> predicted): {:?}", &top[..top.len().min(10)]);
    for (label, s) in [("in-batch", 0usize), ("batch-start", 1)] {
        println!(
            "{label:>12}: LSTM err {:.1}% ({}/{})  Repeat err {:.1}% ({}/{})",
            100.0 * stats[s][0] as f64 / stats[s][1].max(1) as f64,
            stats[s][0],
            stats[s][1],
            100.0 * repeat_stats[s][0] as f64 / repeat_stats[s][1].max(1) as f64,
            repeat_stats[s][0],
            repeat_stats[s][1],
        );
    }
    println!(
        "mean |pred - true| bin distance on LSTM errors: {:.2}",
        dist_sum / dist_n.max(1) as f64
    );
}
