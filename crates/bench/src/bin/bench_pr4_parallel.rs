//! PR 4 perf acceptance: single- vs multi-thread train/generate throughput
//! for the deterministic data-parallel runtime, with the determinism
//! contract asserted along the way (identical losses and traces across
//! worker counts — a speedup that changes the numbers would not count).
//!
//! Writes `BENCH_pr4.json` at the repo root (override with `--out PATH`).
//! Knobs: `CLOUDGEN_BENCH_THREADS` (default 4) picks the multi-thread
//! worker count; `CLOUDGEN_REQUIRE_SPEEDUP` (e.g. `2.0`), when set, fails
//! the run unless the end-to-end train+generate speedup reaches the bound
//! — set it in CI on a runner that actually has the cores; leave it unset
//! on shared/1-core machines where the bound is meaningless.

use cloudgen::lifetimes::LifetimeHead;
use cloudgen::{
    ArrivalTarget, BatchArrivalModel, FeatureSpace, FlavorModel, GeneratorConfig, LifetimeModel,
    Parallelism, TokenStream, TraceGenerator, TrainConfig,
};
use glm::{DohStrategy, ElasticNet};
use obsv::{NullRecorder, Stopwatch};
use survival::LifetimeBins;
use synth::{CloudWorld, WorldConfig};
use trace::period::TemporalFeaturesSpec;
use trace::ObservationWindow;

/// Fixed shard layout: the numeric contract shared by every worker count.
const SHARD_SEQS: usize = 2;
const TRAIN_DAYS: u64 = 3;
const GEN_PERIODS: u64 = 5 * 288;

struct Measure {
    wall_ms: f64,
    units_per_sec: f64,
}

fn measure<T>(units: f64, f: impl FnOnce() -> T) -> (T, Measure) {
    let t0 = Stopwatch::new();
    let out = f();
    let wall = t0.elapsed_s();
    (
        out,
        Measure {
            wall_ms: wall * 1e3,
            units_per_sec: units / wall.max(1e-9),
        },
    )
}

fn main() {
    let threads: usize = std::env::var("CLOUDGEN_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_pr4.json".to_string())
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let world = CloudWorld::new(WorldConfig::azure_like(0.6), 17);
    let history = world.generate(TRAIN_DAYS as u32 + 1);
    let window = ObservationWindow::new(0, TRAIN_DAYS * 86_400);
    let train = window.apply_unshifted(&history);
    let bins = LifetimeBins::paper_47();
    let temporal = TemporalFeaturesSpec::new(TRAIN_DAYS as usize);
    let space = FeatureSpace::new(train.catalog.len(), bins.clone(), temporal);
    let stream = TokenStream::from_trace(&train, &bins, window.censor_at);
    let cfg = TrainConfig {
        epochs: 4,
        hidden: 32,
        ..TrainConfig::tiny()
    };
    let tokens = (stream.len() * cfg.epochs) as f64;
    let arrivals = BatchArrivalModel::fit(
        &train,
        window.end,
        ArrivalTarget::Batches,
        temporal,
        ElasticNet::ridge(1.0),
        DohStrategy::paper_default(),
    )
    .expect("arrival fit");

    eprintln!(
        "bench_pr4_parallel: {} train tokens, {GEN_PERIODS}-period horizon, \
         shard_seqs={SHARD_SEQS}, {cores} core(s) visible, comparing 1 vs {threads} worker(s)",
        stream.len()
    );

    let mut train_ms = Vec::new();
    let mut train_tps = Vec::new();
    let mut gen_ms = Vec::new();
    let mut gen_jps = Vec::new();
    let mut losses = Vec::new();
    let mut traces = Vec::new();
    for t in [1, threads] {
        let par = Parallelism::with_threads(t, SHARD_SEQS);
        let (models, m_train) = measure(tokens, || {
            let f = FlavorModel::fit_par_recorded(&stream, space.clone(), cfg, par, &NullRecorder);
            let l = LifetimeModel::fit_par_recorded(
                &stream,
                space.clone(),
                cfg,
                LifetimeHead::Hazard,
                par,
                &NullRecorder,
            );
            (f, l)
        });
        let generator = TraceGenerator {
            arrivals: arrivals.clone(),
            fallback: None,
            flavors: models.0,
            lifetimes: models.1,
            config: GeneratorConfig::default(),
        };
        // Wall-clock-first: generate once to size the workload, then time it.
        let probe = generator.generate_par(TRAIN_DAYS * 288, GEN_PERIODS, world.catalog(), 7, t);
        let (trace, m_gen) = measure(probe.len() as f64, || {
            generator.generate_par(TRAIN_DAYS * 288, GEN_PERIODS, world.catalog(), 7, t)
        });
        assert_eq!(probe, trace, "generation must be repeatable");
        eprintln!(
            "  threads={t}: train {:.0} ms ({:.0} tokens/s), generate {:.0} ms ({:.0} jobs/s, {} jobs)",
            m_train.wall_ms,
            m_train.units_per_sec,
            m_gen.wall_ms,
            m_gen.units_per_sec,
            trace.len()
        );
        train_ms.push(m_train.wall_ms);
        train_tps.push(m_train.units_per_sec);
        gen_ms.push(m_gen.wall_ms);
        gen_jps.push(m_gen.units_per_sec);
        losses.push((
            generator.flavors.train_losses.clone(),
            generator.lifetimes.train_losses.clone(),
        ));
        traces.push(trace);
    }

    assert_eq!(
        losses[0], losses[1],
        "determinism violated: training losses differ across worker counts"
    );
    assert_eq!(
        traces[0], traces[1],
        "determinism violated: generated traces differ across worker counts"
    );

    let train_speedup = train_ms[0] / train_ms[1].max(1e-9);
    let gen_speedup = gen_ms[0] / gen_ms[1].max(1e-9);
    let end_to_end = (train_ms[0] + gen_ms[0]) / (train_ms[1] + gen_ms[1]).max(1e-9);
    eprintln!(
        "  speedup at {threads} workers: train {train_speedup:.2}x, \
         generate {gen_speedup:.2}x, end-to-end {end_to_end:.2}x"
    );

    if let Ok(bound) = std::env::var("CLOUDGEN_REQUIRE_SPEEDUP") {
        let bound: f64 = bound.parse().expect("CLOUDGEN_REQUIRE_SPEEDUP must be a number");
        if cores < threads {
            // A speedup bound is meaningless when the workers outnumber the
            // cores (CI runners get oversubscribed); skip loudly rather
            // than fail on machine shape.
            eprintln!(
                "  CLOUDGEN_REQUIRE_SPEEDUP={bound} SKIPPED: only {cores} core(s) \
                 visible for {threads} workers"
            );
        } else {
            assert!(
                end_to_end >= bound,
                "end-to-end speedup {end_to_end:.2}x at {threads} workers is below the \
                 required {bound}x ({cores} core(s) visible)"
            );
        }
    }

    let arm = |i: usize| {
        format!(
            "{{ \"train_wall_ms\": {:.1}, \"train_tokens_per_sec\": {:.1}, \
             \"gen_wall_ms\": {:.1}, \"gen_jobs_per_sec\": {:.1} }}",
            train_ms[i], train_tps[i], gen_ms[i], gen_jps[i]
        )
    };
    let report = format!(
        r#"{{
  "bench": "pr4_parallel_runtime",
  "workload": {{
    "train_tokens": {train_tokens},
    "epochs": {epochs},
    "hidden": {hidden},
    "shard_seqs": {SHARD_SEQS},
    "gen_periods": {GEN_PERIODS},
    "gen_jobs": {gen_jobs}
  }},
  "machine": {{ "visible_cores": {cores}, "threads_used": {threads} }},
  "threads_1": {arm1},
  "threads_{threads}": {arm_n},
  "speedup": {{
    "threads": {threads},
    "train": {train_speedup:.3},
    "generate": {gen_speedup:.3},
    "end_to_end": {end_to_end:.3}
  }},
  "deterministic": true
}}
"#,
        train_tokens = stream.len(),
        epochs = cfg.epochs,
        hidden = cfg.hidden,
        gen_jobs = traces[0].len(),
        arm1 = arm(0),
        arm_n = arm(1),
    );
    std::fs::write(&out_path, report).expect("write BENCH_pr4.json");
    eprintln!("  wrote {out_path}");
}
