//! Figures 4 & 5 reproduction: 90 % prediction intervals for batch arrivals
//! over the test window, with the DOH-sampling vs. last-day ablation.
//!
//! Paper shape: high coverage with DOH sampling (82.5 % Azure / 94.5 %
//! Huawei); pinning DOH to the last training day is brittle — whenever the
//! last training day's level is atypical, coverage collapses, so the
//! ablation is run across several world seeds and the worst case reported.

use bench::{n_samples, pct, row, CloudSetup};
use eval::{coverage, render_band_chart, PredictionBand};
use glm::samplers::sample_poisson;
use glm::DohStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synth::WorldConfig;
use trace::batch::{batch_counts, organize_periods};

fn coverage_for(setup: &CloudSetup, strategy: DohStrategy, render: bool) -> f64 {
    let mut model = setup.fit_arrivals();
    model.set_doh_strategy(strategy);
    let first = setup.test_first_period();
    let n = setup.test_n_periods();
    let periods = organize_periods(&setup.test);
    let all = batch_counts(&periods, first + n);
    let actual = all[first as usize..].to_vec();

    let samples = n_samples();
    let mut rng = StdRng::seed_from_u64(0xF445);
    // 500 samples per period (paper §5.1): each draws a DOH day + count.
    let mut series: Vec<Vec<f64>> = vec![Vec::with_capacity(n as usize); samples];
    for p in first..first + n {
        for s in series.iter_mut() {
            let day = model.sample_doh_day(&mut rng);
            s.push(sample_poisson(model.rate(p, Some(day)), &mut rng) as f64);
        }
    }
    let band = PredictionBand::from_samples(&series, 0.05, 0.95);
    let cov = coverage(&band, &actual);
    if render {
        print!(
            "{}",
            render_band_chart(
                &actual,
                &band.lo,
                &band.median,
                &band.hi,
                100,
                12,
                &format!("batch arrivals / period over {} test days", n / 288)
            )
        );
    }
    cov
}

fn run(name: &'static str) {
    println!("\n=== Figures 4/5 ({name}) ===");
    let seeds: [u64; 3] = [41, 42, 44];
    let mut sampled = Vec::new();
    let mut lastday = Vec::new();
    for (i, &seed) in seeds.iter().enumerate() {
        let setup = if name == "azure" {
            CloudSetup::build("azure", WorldConfig::azure_like(0.8), seed, 10, 2, 3, 0)
        } else {
            CloudSetup::build("huawei", WorldConfig::huawei_like(0.45), seed, 60, 3, 6, 0)
        };
        sampled.push(coverage_for(&setup, DohStrategy::paper_default(), i == 0));
        lastday.push(coverage_for(&setup, DohStrategy::LastDay, false));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    row(
        "DOH sampled",
        &[
            format!("mean {}", pct(mean(&sampled))),
            format!("min {}", pct(min(&sampled))),
        ],
    );
    row(
        "DOH last-day",
        &[
            format!("mean {}", pct(mean(&lastday))),
            format!("min {}", pct(min(&lastday))),
        ],
    );
    let ok = mean(&sampled) > 0.75 && min(&sampled) >= min(&lastday) - 0.02;
    println!(
        "shape check (DOH sampling covers well and is at least as robust as last-day): {}",
        if ok { "PASS" } else { "DIVERGES" }
    );
}

fn main() {
    println!("samples per generator: {}", n_samples());
    run("azure");
    run("huawei");
}
