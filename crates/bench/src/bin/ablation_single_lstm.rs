//! Ablation (§7): the single-LSTM (end-of-period token) alternative vs the
//! paper's three-stage process.
//!
//! The paper rejected the single-LSTM design because generated workload was
//! "exquisitely sensitive to the timely sampling of EOP tokens". This
//! binary quantifies that: it compares per-period job-volume accuracy and
//! total-volume stability of the two designs on the Azure-like world.

use bench::{n_samples, row, sample_traces, CloudSetup};
use cloudgen::sampling::{sample_quantized_duration, DEFAULT_TAIL_HORIZON};
use cloudgen::single_lstm::{period_token_stream, SingleLstmModel};
use eval::quantile;
use rand::rngs::StdRng;
use rand::SeedableRng;
use survival::Interpolation;
use trace::period::{period_of, period_start};
use trace::{Job, Trace, UserId};

fn volume_stats(traces: &[Trace], n_periods: u64) -> (f64, f64, f64) {
    let volumes: Vec<f64> = traces.iter().map(|t| t.len() as f64 / n_periods as f64).collect();
    (
        quantile(&volumes, 0.05),
        quantile(&volumes, 0.5),
        quantile(&volumes, 0.95),
    )
}

fn main() {
    let setup = CloudSetup::azure();
    println!("=== Ablation: three-stage vs single-LSTM with EOP tokens (azure) ===");
    let first = setup.test_first_period();
    let n = setup.test_n_periods();
    let samples = n_samples().min(30);
    let catalog = setup.world.catalog();
    let actual_rate = setup.test.len() as f64 / n as f64;

    // Three-stage generator (cached).
    let three_stage = setup.fit_generator_cached();
    let ts_traces = sample_traces(samples, 0x351, |rng| {
        three_stage.generate(first, n, catalog, rng)
    });

    // Single LSTM over flavor/EOB/EOP tokens; durations from stage 3.
    let train_first = period_of(setup.train_window.start);
    let train_n = setup.train_window.len() / 300;
    let stream = period_token_stream(&setup.train, train_first, train_n);
    let single = SingleLstmModel::fit(&stream, setup.space.clone(), setup.train_config());
    let lifetime = &three_stage.lifetimes;
    let bins = &setup.space.bins;
    let single_traces: Vec<Trace> = (0..samples)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(0x517 + i as u64);
            let periods = single.generate(first, n, 20_000, 1.0, &mut rng);
            let mut lt_state = lifetime.begin();
            let mut jobs = Vec::new();
            let mut user = 0u32;
            for (pi, p) in periods.iter().enumerate() {
                let period = first + pi as u64;
                let start = period_start(period);
                for batch in &p.batches {
                    for (pos, &flavor) in batch.iter().enumerate() {
                        let bin = lifetime.sample_step(
                            &mut lt_state,
                            flavor,
                            batch.len(),
                            pos,
                            period,
                            None,
                            &mut rng,
                        );
                        let d = sample_quantized_duration(
                            bins,
                            bin,
                            Interpolation::Cdi,
                            DEFAULT_TAIL_HORIZON,
                            &mut rng,
                        );
                        jobs.push(Job {
                            start,
                            end: Some(start + d),
                            flavor,
                            user: UserId(user),
                        });
                    }
                    user = user.wrapping_add(1);
                }
            }
            Trace::new(jobs, catalog.clone())
        })
        .collect();

    let (ts_lo, ts_med, ts_hi) = volume_stats(&ts_traces, n);
    let (sl_lo, sl_med, sl_hi) = volume_stats(&single_traces, n);
    row(
        "Design",
        &["p5 jobs/prd".into(), "median".into(), "p95".into(), "rel. spread".into()],
    );
    row(
        "Three-stage",
        &[
            format!("{ts_lo:.2}"),
            format!("{ts_med:.2}"),
            format!("{ts_hi:.2}"),
            format!("{:.2}", (ts_hi - ts_lo) / ts_med.max(1e-9)),
        ],
    );
    row(
        "Single-LSTM",
        &[
            format!("{sl_lo:.2}"),
            format!("{sl_med:.2}"),
            format!("{sl_hi:.2}"),
            format!("{:.2}", (sl_hi - sl_lo) / sl_med.max(1e-9)),
        ],
    );
    row("Actual", &["".into(), format!("{actual_rate:.2}"), "".into(), "".into()]);

    let ts_err = (ts_med - actual_rate).abs() / actual_rate;
    let sl_err = (sl_med - actual_rate).abs() / actual_rate;
    println!(
        "median volume error: three-stage {:.1}%, single-LSTM {:.1}%",
        ts_err * 100.0,
        sl_err * 100.0
    );
    println!(
        "shape check (three-stage volume at least as accurate as single-LSTM): {}",
        if ts_err <= sl_err + 0.02 { "PASS" } else { "DIVERGES" }
    );
}
