//! Figure 9 reproduction: reuse-distance distributions of generated traces
//! vs. actual test data.
//!
//! Paper shape: Naive traces show far less flavor reuse than actual data
//! (too-large distances); SimpleBatch overestimates reuse on the
//! many-flavor cloud; LSTM traces match the actual distribution best (by
//! L1 distance between bucket proportions).

use bench::{n_samples, row, sample_traces, CloudSetup};
use eval::render_histogram;
use sched::reuse_distance_histogram;
use trace::Trace;

const LABELS: [&str; 7] = ["0", "1", "2", "3", "4", "5", "6+"];

fn mean_and_range(traces: &[Trace]) -> ([f64; 7], [f64; 7], [f64; 7]) {
    let mut mean = [0.0; 7];
    let mut lo = [f64::INFINITY; 7];
    let mut hi = [f64::NEG_INFINITY; 7];
    for t in traces {
        let p = reuse_distance_histogram(t).proportions();
        for i in 0..7 {
            mean[i] += p[i] / traces.len() as f64;
            lo[i] = lo[i].min(p[i]);
            hi[i] = hi[i].max(p[i]);
        }
    }
    (mean, lo, hi)
}

fn l1(a: &[f64; 7], b: &[f64; 7]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

fn run(setup: &CloudSetup) {
    println!("\n=== Figure 9 ({}) ===", setup.name);
    let first = setup.test_first_period();
    let n = setup.test_n_periods();
    let samples = n_samples();
    let catalog = setup.world.catalog();

    let actual = reuse_distance_histogram(&setup.test).proportions();
    print!(
        "{}",
        render_histogram(&LABELS, &actual, 40, "actual test data")
    );

    let lstm = setup.fit_generator_cached();
    let naive = setup.fit_naive();
    let simple = setup.fit_simple_batch();

    let mut dists = Vec::new();
    for (label, which) in [("Naive", 0usize), ("SimpleBatch", 1), ("LSTM", 2)] {
        let traces = sample_traces(samples, 0x900 + which as u64, |rng| match which {
            0 => naive.generate(first, n, catalog, rng),
            1 => simple.generate(first, n, catalog, rng),
            _ => lstm.generate(first, n, catalog, rng),
        });
        let (mean, lo, hi) = mean_and_range(&traces);
        print!(
            "{}",
            render_histogram(
                &LABELS,
                &mean,
                40,
                &format!("{label} (mean of {samples} samples)")
            )
        );
        let spread: f64 = (0..7).map(|i| hi[i] - lo[i]).sum();
        let d = l1(&mean, &actual);
        row(
            label,
            &[
                format!("L1 vs actual {d:.3}"),
                format!("range spread {spread:.3}"),
            ],
        );
        dists.push((label, d));
    }

    let lstm_d = dists
        .iter()
        .find(|(l, _)| *l == "LSTM")
        .expect("lstm row")
        .1;
    let best = dists.iter().all(|&(l, d)| l == "LSTM" || lstm_d <= d);
    println!(
        "shape check (LSTM matches actual reuse pattern best): {}",
        if best { "PASS" } else { "DIVERGES" }
    );
}

fn main() {
    println!("samples per generator: {}", n_samples());
    if bench::run_cloud("azure") {
        run(&CloudSetup::azure());
    }
    if bench::run_cloud("huawei") {
        run(&CloudSetup::huawei());
    }
}
