//! Diagnostic: decompose generated-volume bias into stage-1 batch counts vs
//! stage-2 batch sizes. (Tuning aid, not a paper experiment.)

use bench::{sample_traces, CloudSetup};
use trace::batch::organize_periods;

fn main() {
    let setup = CloudSetup::azure();
    let first = setup.test_first_period();
    let n = setup.test_n_periods();

    let actual_periods = organize_periods(&setup.test);
    let actual_batches: usize = actual_periods.iter().map(|p| p.batches.len()).sum();
    let actual_jobs = setup.test.len();

    // Stage-1-only: expected batch count over the window, averaged over DOH.
    let arrivals = setup.fit_arrivals();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1u64);
    let mut sampled_batches = 0u64;
    let reps = 30;
    for _ in 0..reps {
        for p in first..first + n {
            sampled_batches += arrivals.sample_count(p, 1.0, &mut rng);
        }
    }
    println!(
        "batches over test window: actual {} | stage-1 sampled mean {:.0}",
        actual_batches,
        sampled_batches as f64 / reps as f64
    );
    println!(
        "actual mean batch size: {:.2}",
        actual_jobs as f64 / actual_batches.max(1) as f64
    );

    let lstm = setup.fit_generator_cached();
    let traces = sample_traces(10, 0xD1A6, |rng| {
        lstm.generate(first, n, setup.world.catalog(), rng)
    });
    let mut gen_batches = 0usize;
    let mut gen_jobs = 0usize;
    for t in &traces {
        gen_jobs += t.len();
        gen_batches += organize_periods(t).iter().map(|p| p.batches.len()).sum::<usize>();
    }
    println!(
        "generated per trace: {:.0} batches, {:.0} jobs (mean size {:.2})",
        gen_batches as f64 / traces.len() as f64,
        gen_jobs as f64 / traces.len() as f64,
        gen_jobs as f64 / gen_batches.max(1) as f64
    );
}
