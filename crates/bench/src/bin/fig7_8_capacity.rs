//! Figures 7 & 8 reproduction: capacity planning. Total active CPUs over
//! the test window, with 90 % prediction intervals from sampled end-to-end
//! traces, for Naive, SimpleBatch, and the LSTM generator.
//!
//! Paper shape: Naive coverage ≈ 0 % (independence assumptions wildly
//! underestimate variance), SimpleBatch much better on the flat cloud but
//! poor on the growing cloud (whole-history statistics are stale), LSTM
//! high on both. Jobs already running at the test start contribute their
//! actual lifetimes to every model's series (§6.1).

use bench::{n_samples, pct, row, sample_traces, CloudSetup};
use eval::{coverage, render_band_chart, PredictionBand};

fn add(series: &[f64], carry: &[f64]) -> Vec<f64> {
    series.iter().zip(carry).map(|(a, b)| a + b).collect()
}

fn run(setup: &CloudSetup) {
    println!("\n=== Figures 7/8 ({}) ===", setup.name);
    let first = setup.test_first_period();
    let n = setup.test_n_periods();
    let carry = setup.carryover_cpus();
    let actual = add(&setup.test_cpu_series(&setup.test), &carry);
    let samples = n_samples();

    let lstm = setup.fit_generator_cached();
    let naive = setup.fit_naive();
    let simple = setup.fit_simple_batch();
    let catalog = setup.world.catalog();

    let mut results: Vec<(&str, f64, PredictionBand)> = Vec::new();
    for (label, gen) in [("Naive", 0usize), ("SimpleBatch", 1), ("LSTM", 2)] {
        let start = obsv::Stopwatch::new();
        let traces = sample_traces(samples, 0x700 + gen as u64, |rng| match gen {
            0 => naive.generate(first, n, catalog, rng),
            1 => simple.generate(first, n, catalog, rng),
            _ => lstm.generate(first, n, catalog, rng),
        });
        let series: Vec<Vec<f64>> = traces
            .iter()
            .map(|t| add(&setup.test_cpu_series(t), &carry))
            .collect();
        let band = PredictionBand::from_samples(&series, 0.05, 0.95);
        let cov = coverage(&band, &actual);
        eprintln!(
            "[{label}] {samples} traces sampled in {:.1}s",
            start.elapsed_s()
        );
        row(label, &[format!("coverage {}", pct(cov))]);
        results.push((label, cov, band));
    }

    for (label, cov, band) in &results {
        print!(
            "{}",
            render_band_chart(
                &actual,
                &band.lo,
                &band.median,
                &band.hi,
                100,
                10,
                &format!(
                    "{label}: total CPUs over test window (coverage {})",
                    pct(*cov)
                )
            )
        );
    }

    let naive_cov = results[0].1;
    let simple_cov = results[1].1;
    let lstm_cov = results[2].1;
    let ok = naive_cov < 0.3 && lstm_cov > 0.5 && lstm_cov > naive_cov && {
        // On the growing cloud, SimpleBatch should trail the LSTM.
        setup.name != "huawei" || lstm_cov > simple_cov
    };
    println!(
        "shape check (Naive near zero; LSTM high{}): {}",
        if setup.name == "huawei" {
            "; LSTM > SimpleBatch"
        } else {
            ""
        },
        if ok { "PASS" } else { "DIVERGES" }
    );
}

fn main() {
    println!("samples per generator: {}", n_samples());
    if bench::run_cloud("azure") {
        run(&CloudSetup::azure());
    }
    if bench::run_cloud("huawei") {
        run(&CloudSetup::huawei());
    }
}
