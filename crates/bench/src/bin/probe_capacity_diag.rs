//! Diagnostic: where does the Azure capacity band sit relative to truth?
//! (Tuning aid, not a paper experiment.)

use bench::{sample_traces, CloudSetup};
use eval::PredictionBand;

fn main() {
    let setup = CloudSetup::azure();
    let first = setup.test_first_period();
    let n = setup.test_n_periods();
    let carry = setup.carryover_cpus();
    let actual: Vec<f64> = setup
        .test_cpu_series(&setup.test)
        .iter()
        .zip(&carry)
        .map(|(a, b)| a + b)
        .collect();

    let lstm = setup.fit_generator_cached();
    let traces = sample_traces(30, 0x700 + 2, |rng| {
        lstm.generate(first, n, setup.world.catalog(), rng)
    });
    let series: Vec<Vec<f64>> = traces
        .iter()
        .map(|t| {
            setup
                .test_cpu_series(t)
                .iter()
                .zip(&carry)
                .map(|(a, b)| a + b)
                .collect()
        })
        .collect();
    let band = PredictionBand::from_samples(&series, 0.05, 0.95);

    // How often is actual below lo vs above hi, and by how much?
    let mut below = 0;
    let mut above = 0;
    for (i, &a) in actual.iter().enumerate() {
        if a < band.lo[i] {
            below += 1;
        } else if a > band.hi[i] {
            above += 1;
        }
    }
    println!(
        "periods: {} | actual below band: {below} | above band: {above}",
        actual.len()
    );
    for &frac in &[0.1, 0.3, 0.5, 0.7, 0.9] {
        let i = ((n - 1) as f64 * frac) as usize;
        println!(
            "t={frac:.1}: actual {:.0}  band [{:.0}, {:.0}] med {:.0}  carry {:.0}",
            actual[i], band.lo[i], band.hi[i], band.median[i], carry[i]
        );
    }
    // Volume comparison: generated vs actual new jobs + mean lifetime.
    let actual_jobs = setup.test.len();
    let mean_gen_jobs: f64 =
        traces.iter().map(|t| t.len() as f64).sum::<f64>() / traces.len() as f64;
    println!("actual test jobs: {actual_jobs}; mean generated: {mean_gen_jobs:.0}");
    let mean_life = |t: &trace::Trace, censor: u64| -> f64 {
        t.jobs
            .iter()
            .map(|j| j.observed_duration(censor) as f64)
            .sum::<f64>()
            / t.len().max(1) as f64
    };
    println!(
        "mean observed lifetime (h): actual {:.2} vs generated {:.2}",
        mean_life(&setup.test, setup.test_window.censor_at) / 3600.0,
        mean_life(&traces[0], u64::MAX / 2) / 3600.0
    );
}
