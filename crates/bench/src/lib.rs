//! Shared experiment harness for the table/figure reproduction binaries.
//!
//! Every binary follows the same recipe (§3–§4 of the paper, at reduced
//! scale):
//!
//! 1. build a synthetic cloud world ([`synth::CloudWorld`]) standing in for
//!    the Azure / Huawei production traces;
//! 2. split its history into train / dev / test observation windows, each
//!    censored at its own end;
//! 3. train the three model stages on the train window;
//! 4. evaluate on the test window and print the paper's table rows or
//!    figure series.
//!
//! Scale knobs (environment variables, so the binaries stay reproducible by
//! default but can be pushed toward paper scale):
//!
//! - `CLOUDGEN_SAMPLES`: sampled traces per generator (default 60; the paper
//!   uses 500);
//! - `CLOUDGEN_EPOCHS`: LSTM training epochs (default 48);
//! - `CLOUDGEN_HIDDEN`: LSTM hidden units (default 48).

#![forbid(unsafe_code)]

pub mod continuous;
pub mod report_io;

use cloudgen::{
    ArrivalTarget, BatchArrivalModel, FeatureSpace, FlavorModel, GenFallback, GeneratorConfig,
    LifetimeModel, NaiveGenerator, SimpleBatchGenerator, TokenStream, TraceGenerator, TrainConfig,
};
use glm::{DohStrategy, ElasticNet};
use rand::rngs::StdRng;
use rand::SeedableRng;
#[cfg(test)]
use rand::Rng as _;
use survival::LifetimeBins;
use synth::{CloudWorld, WorldConfig};
use trace::period::{TemporalFeaturesSpec, PERIOD_SECS};
use trace::{ObservationWindow, Trace};

/// Seconds per day.
pub const DAY: u64 = 86_400;

/// Reads a scale knob from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Number of sampled traces per generator (paper: 500).
pub fn n_samples() -> usize {
    env_usize("CLOUDGEN_SAMPLES", 60)
}

/// Which clouds a binary should run (`CLOUDGEN_CLOUDS=azure|huawei|both`).
pub fn run_cloud(name: &str) -> bool {
    match std::env::var("CLOUDGEN_CLOUDS") {
        Ok(v) if v == "both" || v.is_empty() => true,
        Ok(v) => v.split(',').any(|c| c.trim() == name),
        Err(_) => true,
    }
}

/// A fully prepared experimental cloud: ground truth, windows, streams.
pub struct CloudSetup {
    /// `"azure"` or `"huawei"`.
    pub name: &'static str,
    /// The ground-truth world.
    pub world: CloudWorld,
    /// Full uncensored history.
    pub history: Trace,
    /// Train window (absolute timestamps, censored at its end).
    pub train: Trace,
    /// Test window (absolute timestamps, censored at its end).
    pub test: Trace,
    /// The train observation window.
    pub train_window: ObservationWindow,
    /// The test observation window.
    pub test_window: ObservationWindow,
    /// Shared feature space (bins + temporal spec).
    pub space: FeatureSpace,
    /// Train-window token stream.
    pub train_stream: TokenStream,
    /// Test-window token stream.
    pub test_stream: TokenStream,
}

impl CloudSetup {
    /// Builds a setup from a world config and window lengths in days.
    ///
    /// `extend_censor_days` keeps monitoring test VMs past the test window
    /// before right-censoring them — §3.2's Huawei procedure (the paper
    /// monitors two months beyond a 17-day test window).
    pub fn build(
        name: &'static str,
        config: WorldConfig,
        seed: u64,
        train_days: u32,
        dev_days: u32,
        test_days: u32,
        extend_censor_days: u32,
    ) -> Self {
        let world = CloudWorld::new(config, seed);
        let total_days = train_days + dev_days + test_days;
        let history = world.generate(total_days + extend_censor_days);

        let train_window = ObservationWindow::new(0, train_days as u64 * DAY);
        let test_start = (train_days + dev_days) as u64 * DAY;
        let test_window = ObservationWindow::with_extended_censoring(
            test_start,
            total_days as u64 * DAY,
            (total_days + extend_censor_days) as u64 * DAY,
        );

        let train = train_window.apply_unshifted(&history);
        let test = test_window.apply_unshifted(&history);

        let bins = LifetimeBins::paper_47();
        let temporal = TemporalFeaturesSpec::new(train_days as usize);
        let space = FeatureSpace::new(world.catalog().len(), bins.clone(), temporal);

        let train_stream = TokenStream::from_trace(&train, &bins, train_window.censor_at);
        let test_stream = TokenStream::from_trace(&test, &bins, test_window.censor_at);

        Self {
            name,
            world,
            history,
            train,
            test,
            train_window,
            test_window,
            space,
            train_stream,
            test_stream,
        }
    }

    /// The Azure-like experiment world (16 flavors, flat trend).
    pub fn azure() -> Self {
        Self::build("azure", WorldConfig::azure_like(1.2), 41, 14, 2, 3, 0)
    }

    /// The Huawei-like experiment world (many flavors, growth + level-off).
    ///
    /// The world's level-off day (55) falls inside the training window, so —
    /// as in the paper — whole-history statistics overestimate the test
    /// workload while DOH sampling tracks the recent past. Test VMs are
    /// monitored 20 days beyond the test window before censoring (§3.2's
    /// extended-censoring procedure, scaled down from two months).
    pub fn huawei() -> Self {
        Self::build("huawei", WorldConfig::huawei_like(0.45), 43, 60, 3, 6, 20)
    }

    /// First test period index.
    pub fn test_first_period(&self) -> u64 {
        self.test_window.start / PERIOD_SECS
    }

    /// Number of test periods.
    pub fn test_n_periods(&self) -> u64 {
        self.test_window.len() / PERIOD_SECS
    }

    /// The training configuration for both LSTMs (env-tunable).
    ///
    /// The Huawei-like world defaults to fewer epochs: its 259-flavor
    /// one-hot inputs make each optimizer step ~7x more expensive than the
    /// Azure-like world's, and its coarser lifetime structure (bigger
    /// batches, stronger repeats) converges in fewer steps.
    pub fn train_config(&self) -> TrainConfig {
        let default_epochs = if self.name == "huawei" { 32 } else { 48 };
        TrainConfig {
            hidden: env_usize("CLOUDGEN_HIDDEN", 48),
            layers: env_usize("CLOUDGEN_LAYERS", 1),
            epochs: env_usize("CLOUDGEN_EPOCHS", default_epochs),
            ..TrainConfig::default()
        }
    }

    /// Fits the stage-1 batch-arrival model (with DOH sampling).
    pub fn fit_arrivals(&self) -> BatchArrivalModel {
        BatchArrivalModel::fit(
            &self.train,
            self.train_window.end,
            ArrivalTarget::Batches,
            self.space.temporal,
            // A light ridge: the survival-encoded day-of-history weights
            // must fit each day's level so DOH sampling reproduces the real
            // day-to-day dispersion.
            ElasticNet::ridge(0.05),
            DohStrategy::paper_default(),
        )
        .expect("arrival fit")
    }

    /// Fits the stage-2 flavor LSTM.
    pub fn fit_flavors(&self) -> FlavorModel {
        FlavorModel::fit(&self.train_stream, self.space.clone(), self.train_config())
    }

    /// Fits the stage-3 lifetime LSTM.
    pub fn fit_lifetimes(&self) -> LifetimeModel {
        LifetimeModel::fit(&self.train_stream, self.space.clone(), self.train_config())
    }

    /// Fits the full three-stage generator.
    pub fn fit_generator(&self) -> TraceGenerator {
        TraceGenerator {
            arrivals: self.fit_arrivals(),
            flavors: self.fit_flavors(),
            lifetimes: self.fit_lifetimes(),
            config: GeneratorConfig::default(),
            fallback: Some(GenFallback::fit(&self.train_stream, &self.space)),
        }
    }

    /// Fits the Naive end-to-end baseline.
    pub fn fit_naive(&self) -> NaiveGenerator {
        NaiveGenerator::fit(&self.train, self.train_window.end, self.space.clone())
            .expect("naive fit")
    }

    /// Fits the SimpleBatch end-to-end baseline.
    pub fn fit_simple_batch(&self) -> SimpleBatchGenerator {
        SimpleBatchGenerator::fit(
            &self.train,
            self.train_window.end,
            self.space.clone(),
            self.space.temporal,
            DohStrategy::paper_default(),
        )
        .expect("simple-batch fit")
    }

    /// CPU load contributed to each test period by jobs that started before
    /// the test window (their *actual* lifetimes — held constant across all
    /// generators, per §6.1).
    pub fn carryover_cpus(&self) -> Vec<f64> {
        let first = self.test_first_period();
        let n = self.test_n_periods();
        let mut diff = vec![0.0; n as usize + 1];
        for job in &self.history.jobs {
            if job.start >= self.test_window.start {
                continue;
            }
            let end = match job.end {
                Some(e) if e <= self.test_window.start => continue,
                Some(e) => e,
                None => u64::MAX,
            };
            let vcpus = self.history.catalog.get(job.flavor).vcpus;
            let p_end = (end.div_ceil(PERIOD_SECS)).clamp(first, first + n) - first;
            diff[0] += vcpus;
            diff[p_end as usize] -= vcpus;
        }
        let mut out = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for d in diff.iter().take(n as usize) {
            acc += d;
            out.push(acc);
        }
        out
    }

    /// Active-CPU series of a generated (or the real) test trace over the
    /// test window, *excluding* carryover.
    pub fn test_cpu_series(&self, t: &Trace) -> Vec<f64> {
        let first = self.test_first_period();
        let n = self.test_n_periods();
        let mut diff = vec![0.0; n as usize + 1];
        for job in &t.jobs {
            if job.start < self.test_window.start {
                continue;
            }
            let vcpus = t.catalog.get(job.flavor).vcpus;
            let p_start = (job.start.div_ceil(PERIOD_SECS)).clamp(first, first + n) - first;
            let p_end = match job.end {
                Some(e) => (e.div_ceil(PERIOD_SECS)).clamp(first, first + n) - first,
                None => n,
            };
            if p_start < p_end {
                diff[p_start as usize] += vcpus;
                diff[p_end as usize] -= vcpus;
            }
        }
        let mut out = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for d in diff.iter().take(n as usize) {
            acc += d;
            out.push(acc);
        }
        out
    }
}

/// Samples `n` traces from a generator closure, seeding each draw
/// deterministically.
pub fn sample_traces(
    n: usize,
    base_seed: u64,
    mut generate: impl FnMut(&mut StdRng) -> Trace,
) -> Vec<Trace> {
    (0..n)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(seed_for(base_seed, i));
            generate(&mut rng)
        })
        .collect()
}

/// Like [`sample_traces`], but fans the draws out across all available CPU
/// cores with `std::thread::scope`. Produces the identical traces (same
/// per-index seeds) regardless of thread count.
pub fn sample_traces_parallel(
    n: usize,
    base_seed: u64,
    generate: impl Fn(&mut StdRng) -> Trace + Sync,
) -> Vec<Trace> {
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 {
        let gen = generate;
        return sample_traces(n, base_seed, move |rng| gen(rng));
    }
    let mut out: Vec<Option<Trace>> = (0..n).map(|_| None).collect();
    let gen_ref = &generate;
    std::thread::scope(|scope| {
        for (t, chunk) in out.chunks_mut(n.div_ceil(threads)).enumerate() {
            let first = t * n.div_ceil(threads);
            scope.spawn(move || {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let mut rng = StdRng::seed_from_u64(seed_for(base_seed, first + off));
                    *slot = Some(gen_ref(&mut rng));
                }
            });
        }
    });
    out.into_iter().map(|t| t.expect("all slots filled")).collect()
}

fn seed_for(base_seed: u64, i: usize) -> u64 {
    base_seed.wrapping_add(i as u64 * 0x9E37)
}

/// Pretty-prints a labelled table row.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<16}");
    for c in cells {
        print!(" {c:>12}");
    }
    println!();
}

/// Formats an optional metric (`N/A` when absent, as in the paper's tables).
pub fn fmt_opt(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(x) => format!("{x:.digits$}"),
        None => "N/A".to_string(),
    }
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

impl CloudSetup {
    /// Fits the three-stage generator, caching the trained weights under
    /// `target/model-cache/` so that later reproduction binaries reuse them.
    pub fn fit_generator_cached(&self) -> TraceGenerator {
        let cfg = self.train_config();
        let dir = std::path::Path::new("target/model-cache");
        // The fingerprint covers everything that affects the trained models:
        // world config, window layout, and training hyperparameters — so
        // stale caches cannot silently poison results after a change.
        let fingerprint = {
            let desc = format!(
                "v2|{:?}|{:?}|{:?}|{:?}",
                self.world.config(),
                self.train_window,
                self.test_window,
                cfg
            );
            let mut h: u64 = 0xcbf29ce484222325;
            for b in desc.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h
        };
        let path = dir.join(format!(
            "{}-h{}-e{}-{fingerprint:016x}.json",
            self.name, cfg.hidden, cfg.epochs
        ));
        if let Ok(s) = std::fs::read_to_string(&path) {
            if let Ok(g) = serde_json::from_str::<TraceGenerator>(&s) {
                eprintln!("[cache] loaded trained models from {}", path.display());
                return g;
            }
        }
        let start = obsv::Stopwatch::new();
        let g = self.fit_generator();
        eprintln!(
            "[train] three-stage generator fitted in {:.1}s",
            start.elapsed_s()
        );
        let _ = std::fs::create_dir_all(dir);
        if let Ok(s) = serde_json::to_string(&g) {
            let _ = std::fs::write(&path, s);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_windows_are_consistent() {
        let s = CloudSetup::build("azure", synth::WorldConfig::azure_like(0.3), 5, 2, 1, 1, 0);
        assert_eq!(s.train_window.start, 0);
        assert_eq!(s.train_window.end, 2 * DAY);
        assert_eq!(s.test_window.start, 3 * DAY);
        assert_eq!(s.test_first_period(), 3 * 288);
        assert_eq!(s.test_n_periods(), 288);
        // Train/test traces only contain jobs from their windows.
        assert!(s.train.jobs.iter().all(|j| j.start < 2 * DAY));
        assert!(s
            .test
            .jobs
            .iter()
            .all(|j| j.start >= 3 * DAY && j.start < 4 * DAY));
    }

    #[test]
    fn carryover_plus_new_equals_total_active() {
        let s = CloudSetup::build("azure", synth::WorldConfig::azure_like(0.3), 6, 2, 1, 1, 0);
        let carry = s.carryover_cpus();
        let new = s.test_cpu_series(&s.test);
        // Compare against a direct computation over the full history.
        let first = s.test_first_period();
        let n = s.test_n_periods();
        let direct = trace::stats::active_cpus_per_period(&s.history, first + n);
        for (i, (&c, &w)) in carry.iter().zip(&new).enumerate() {
            let total = c + w;
            let want = direct[(first as usize) + i];
            assert!(
                (total - want).abs() < 1e-9,
                "period {i}: carry {c} + new {w} != {want}"
            );
        }
    }

    #[test]
    fn sample_traces_is_deterministic() {
        let a = sample_traces(3, 7, |rng| {
            synth::CloudWorld::new(synth::WorldConfig::azure_like(0.2), rng.gen()).generate(1)
        });
        let b = sample_traces(3, 7, |rng| {
            synth::CloudWorld::new(synth::WorldConfig::azure_like(0.2), rng.gen()).generate(1)
        });
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    #[test]
    fn parallel_sampler_matches_sequential() {
        let gen = |rng: &mut StdRng| {
            synth::CloudWorld::new(synth::WorldConfig::azure_like(0.2), rng.gen()).generate(1)
        };
        let seq = sample_traces(4, 11, |rng| gen(rng));
        let par = sample_traces_parallel(4, 11, gen);
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_sampler_handles_zero_and_one() {
        let gen = |rng: &mut StdRng| {
            synth::CloudWorld::new(synth::WorldConfig::azure_like(0.2), rng.gen()).generate(1)
        };
        assert!(sample_traces_parallel(0, 1, gen).is_empty());
        assert_eq!(sample_traces_parallel(1, 1, gen).len(), 1);
    }
}
