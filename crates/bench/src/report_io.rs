//! Hand-rolled JSON reader/writer for [`BenchReport`].
//!
//! The report format is shallow, stable, and written/read on the CI gate
//! path (`cloudgen-bench run` / `compare`), so it gets a dependency-free
//! serializer and a strict recursive-descent parser instead of going
//! through a JSON backend. The writer emits fields in the same order as
//! the serde derives on [`BenchReport`]; the parser tolerates unknown
//! keys so a baseline file can carry extra context (e.g. a `"before"`
//! section recorded alongside `BENCH_pr9.json`).

use crate::continuous::{BenchEntry, BenchReport, MachineFingerprint};

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number. `f64`'s `Display` is the shortest
/// round-trippable decimal, which is valid JSON for finite values; bench
/// numbers are wall times and throughputs, so non-finite is a bug.
fn json_f64(x: f64) -> String {
    debug_assert!(x.is_finite(), "bench report numbers must be finite");
    format!("{x}")
}

impl BenchReport {
    /// Serializes the report to pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        s.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(&self.bench)));
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str("  \"machine\": {\n");
        s.push_str(&format!(
            "    \"visible_cores\": {},\n",
            self.machine.visible_cores
        ));
        s.push_str(&format!(
            "    \"threads_used\": {}\n",
            self.machine.threads_used
        ));
        s.push_str("  },\n");
        s.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&r.name)));
            s.push_str(&format!("      \"kind\": \"{}\",\n", json_escape(&r.kind)));
            s.push_str(&format!("      \"trials\": {},\n", r.trials));
            s.push_str(&format!(
                "      \"wall_ms_median\": {},\n",
                json_f64(r.wall_ms_median)
            ));
            s.push_str(&format!(
                "      \"wall_ms_mad\": {}",
                json_f64(r.wall_ms_mad)
            ));
            if let Some(g) = r.gflops {
                s.push_str(&format!(",\n      \"gflops\": {}", json_f64(g)));
            }
            if let Some(t) = r.throughput {
                s.push_str(&format!(",\n      \"throughput\": {}", json_f64(t)));
            }
            if let Some(u) = &r.throughput_unit {
                s.push_str(&format!(
                    ",\n      \"throughput_unit\": \"{}\"",
                    json_escape(u)
                ));
            }
            s.push('\n');
            s.push_str("    }");
            if i + 1 < self.results.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Parses a report from JSON and applies the same structural checks
    /// as [`crate::continuous::validate_report`].
    ///
    /// # Errors
    ///
    /// On malformed JSON, missing/ill-typed required fields, or a report
    /// that fails structural validation.
    pub fn from_json_str(s: &str) -> Result<Self, String> {
        let v = parse_value(&mut Cursor::new(s))?;
        let report = report_from_value(&v)?;
        report.validate_structure()?;
        Ok(report)
    }

    /// The structural invariants `cloudgen-bench` enforces on every report
    /// it writes or loads (mirrors `validate_report` on parsed JSON).
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    pub fn validate_structure(&self) -> Result<(), String> {
        if self.schema_version != crate::continuous::SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} != supported {}",
                self.schema_version,
                crate::continuous::SCHEMA_VERSION
            ));
        }
        if self.bench != crate::continuous::SUITE {
            return Err(format!("bench is not {:?}", crate::continuous::SUITE));
        }
        if self.machine.visible_cores == 0 {
            return Err("machine.visible_cores is zero".into());
        }
        if self.machine.threads_used == 0 {
            return Err("machine.threads_used is zero".into());
        }
        if self.results.is_empty() {
            return Err("results is empty".into());
        }
        for (i, r) in self.results.iter().enumerate() {
            if r.kind != "kernel" && r.kind != "stage" {
                return Err(format!("results[{i}] ({}): bad kind {:?}", r.name, r.kind));
            }
            if !r.wall_ms_median.is_finite() || r.wall_ms_median < 0.0 {
                return Err(format!(
                    "results[{i}] ({}): wall_ms_median {} invalid",
                    r.name, r.wall_ms_median
                ));
            }
            if !r.wall_ms_mad.is_finite() || r.wall_ms_mad < 0.0 {
                return Err(format!(
                    "results[{i}] ({}): wall_ms_mad {} invalid",
                    r.name, r.wall_ms_mad
                ));
            }
            if r.trials == 0 {
                return Err(format!("results[{i}] ({}): trials is zero", r.name));
            }
            if r.kind == "kernel" && !r.gflops.is_some_and(|g| g > 0.0) {
                return Err(format!(
                    "results[{i}] ({}): kernel without positive gflops",
                    r.name
                ));
            }
        }
        Ok(())
    }
}

/// A parsed JSON value, private to this module — just enough structure to
/// map onto [`BenchReport`] and skip unknown keys.
enum Jv {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Jv>),
    Obj(Vec<(String, Jv)>),
}

impl Jv {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Jv> {
        match self {
            Jv::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn str_field(&self, key: &str) -> Result<String, String> {
        match self.get(key) {
            Some(Jv::Str(s)) => Ok(s.clone()),
            _ => Err(format!("field {key:?} missing or not a string")),
        }
    }

    fn num_field(&self, key: &str) -> Result<f64, String> {
        match self.get(key) {
            Some(Jv::Num(n)) => Ok(*n),
            _ => Err(format!("field {key:?} missing or not a number")),
        }
    }

    fn usize_field(&self, key: &str) -> Result<usize, String> {
        let n = self.num_field(key)?;
        // lint:allow(float-eq): fract() == 0.0 is the exact integrality test
        if n >= 0.0 && n.fract() == 0.0 && n <= u32::MAX as f64 {
            Ok(n as usize)
        } else {
            Err(format!("field {key:?} is not a small non-negative integer"))
        }
    }

    fn opt_num_field(&self, key: &str) -> Result<Option<f64>, String> {
        match self.get(key) {
            None | Some(Jv::Null) => Ok(None),
            Some(Jv::Num(n)) => Ok(Some(*n)),
            Some(_) => Err(format!("field {key:?} present but not a number")),
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.bytes.get(self.pos).copied();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "byte {}: expected {:?}, found {:?}",
                self.pos,
                want as char,
                other.map(|b| b as char)
            )),
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("byte {}: expected literal {lit:?}", self.pos))
        }
    }
}

fn parse_string(c: &mut Cursor) -> Result<String, String> {
    c.expect(b'"')?;
    let mut out = String::new();
    loop {
        match c.bump() {
            None => return Err("unterminated string".into()),
            Some(b'"') => return Ok(out),
            Some(b'\\') => match c.bump() {
                Some(b'"') => out.push('"'),
                Some(b'\\') => out.push('\\'),
                Some(b'/') => out.push('/'),
                Some(b'n') => out.push('\n'),
                Some(b'r') => out.push('\r'),
                Some(b't') => out.push('\t'),
                Some(b'b') => out.push('\u{8}'),
                Some(b'f') => out.push('\u{c}'),
                Some(b'u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = c.bump().ok_or("truncated \\u escape")?;
                        code = code * 16
                            + (d as char)
                                .to_digit(16)
                                .ok_or_else(|| format!("bad hex digit {:?}", d as char))?;
                    }
                    // Surrogate pairs are not produced by our writer; map
                    // lone surrogates to the replacement character.
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(b) if b < 0x80 => out.push(b as char),
            Some(b) => {
                // Multi-byte UTF-8: the input came from a &str, so the
                // sequence is valid; re-decode it.
                let start = c.pos - 1;
                let width = match b {
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let end = (start + width).min(c.bytes.len());
                let chunk =
                    std::str::from_utf8(&c.bytes[start..end]).map_err(|e| e.to_string())?;
                out.push_str(chunk);
                c.pos = end;
            }
        }
    }
}

fn parse_number(c: &mut Cursor) -> Result<f64, String> {
    let start = c.pos;
    while let Some(&b) = c.bytes.get(c.pos) {
        if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
            c.pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&c.bytes[start..c.pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map_err(|e| format!("byte {start}: bad number {text:?}: {e}"))
}

fn parse_value(c: &mut Cursor) -> Result<Jv, String> {
    match c.peek() {
        None => Err("unexpected end of input".into()),
        Some(b'"') => Ok(Jv::Str(parse_string(c)?)),
        Some(b'{') => {
            c.expect(b'{')?;
            let mut pairs = Vec::new();
            if c.peek() == Some(b'}') {
                c.pos += 1;
                return Ok(Jv::Obj(pairs));
            }
            loop {
                c.skip_ws();
                let key = parse_string(c)?;
                c.expect(b':')?;
                let val = parse_value(c)?;
                pairs.push((key, val));
                match c.peek() {
                    Some(b',') => c.pos += 1,
                    Some(b'}') => {
                        c.pos += 1;
                        return Ok(Jv::Obj(pairs));
                    }
                    other => return Err(format!("in object: unexpected {other:?}")),
                }
            }
        }
        Some(b'[') => {
            c.expect(b'[')?;
            let mut items = Vec::new();
            if c.peek() == Some(b']') {
                c.pos += 1;
                return Ok(Jv::Arr(items));
            }
            loop {
                items.push(parse_value(c)?);
                match c.peek() {
                    Some(b',') => c.pos += 1,
                    Some(b']') => {
                        c.pos += 1;
                        return Ok(Jv::Arr(items));
                    }
                    other => return Err(format!("in array: unexpected {other:?}")),
                }
            }
        }
        Some(b't') => {
            c.expect_literal("true")?;
            Ok(Jv::Bool(true))
        }
        Some(b'f') => {
            c.expect_literal("false")?;
            Ok(Jv::Bool(false))
        }
        Some(b'n') => {
            c.expect_literal("null")?;
            Ok(Jv::Null)
        }
        Some(_) => Ok(Jv::Num(parse_number(c)?)),
    }
}

fn report_from_value(v: &Jv) -> Result<BenchReport, String> {
    let schema_version = v.usize_field("schema_version")? as u32;
    let bench = v.str_field("bench")?;
    let quick = match v.get("quick") {
        Some(Jv::Bool(b)) => *b,
        _ => return Err("field \"quick\" missing or not a bool".into()),
    };
    let machine = v.get("machine").ok_or("field \"machine\" missing")?;
    let machine = MachineFingerprint {
        visible_cores: machine.usize_field("visible_cores")?,
        threads_used: machine.usize_field("threads_used")?,
    };
    let results = match v.get("results") {
        Some(Jv::Arr(items)) => items
            .iter()
            .enumerate()
            .map(|(i, r)| {
                entry_from_value(r).map_err(|e| format!("results[{i}]: {e}"))
            })
            .collect::<Result<Vec<_>, String>>()?,
        _ => return Err("field \"results\" missing or not an array".into()),
    };
    Ok(BenchReport {
        schema_version,
        bench,
        quick,
        machine,
        results,
    })
}

fn entry_from_value(v: &Jv) -> Result<BenchEntry, String> {
    Ok(BenchEntry {
        name: v.str_field("name")?,
        kind: v.str_field("kind")?,
        trials: v.usize_field("trials")?,
        wall_ms_median: v.num_field("wall_ms_median")?,
        wall_ms_mad: v.num_field("wall_ms_mad")?,
        gflops: v.opt_num_field("gflops")?,
        throughput: v.opt_num_field("throughput")?,
        throughput_unit: match v.get("throughput_unit") {
            None | Some(Jv::Null) => None,
            Some(Jv::Str(s)) => Some(s.clone()),
            Some(_) => return Err("throughput_unit present but not a string".into()),
        },
    })
}

#[cfg(test)]
mod tests {
    use crate::continuous::{BenchEntry, BenchReport, MachineFingerprint, SCHEMA_VERSION, SUITE};

    fn sample() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            bench: SUITE.into(),
            quick: false,
            machine: MachineFingerprint {
                visible_cores: 8,
                threads_used: 1,
            },
            results: vec![
                BenchEntry {
                    name: "gemm".into(),
                    kind: "kernel".into(),
                    trials: 9,
                    wall_ms_median: 1.25,
                    wall_ms_mad: 0.03125,
                    gflops: Some(16.384),
                    throughput: None,
                    throughput_unit: None,
                },
                BenchEntry {
                    name: "train".into(),
                    kind: "stage".into(),
                    trials: 3,
                    wall_ms_median: 250.5,
                    wall_ms_mad: 1.5,
                    gflops: None,
                    throughput: Some(1000.0),
                    throughput_unit: Some("tokens/sec".into()),
                },
            ],
        }
    }

    #[test]
    fn writer_then_parser_roundtrips() {
        let r = sample();
        let json = r.to_json_string();
        let back = BenchReport::from_json_str(&json).unwrap();
        assert_eq!(back.schema_version, r.schema_version);
        assert_eq!(back.bench, r.bench);
        assert_eq!(back.quick, r.quick);
        assert_eq!(back.machine, r.machine);
        assert_eq!(back.results.len(), r.results.len());
        for (a, b) in back.results.iter().zip(&r.results) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.trials, b.trials);
            // Exact bit equality: Display prints the shortest decimal that
            // round-trips, and the parser goes through f64::from_str.
            assert_eq!(a.wall_ms_median.to_bits(), b.wall_ms_median.to_bits());
            assert_eq!(a.wall_ms_mad.to_bits(), b.wall_ms_mad.to_bits());
            assert_eq!(a.gflops, b.gflops);
            assert_eq!(a.throughput, b.throughput);
            assert_eq!(a.throughput_unit, b.throughput_unit);
        }
    }

    #[test]
    fn parser_tolerates_unknown_keys_and_whitespace() {
        let json = r#"{
            "schema_version": 1,
            "bench": "cloudgen_continuous",
            "quick": true,
            "note": "extra context the schema does not know about",
            "before": {"lstm-fwd": {"wall_ms_median": 99.0}},
            "machine": {"visible_cores": 4, "threads_used": 1, "cpu": "???"},
            "results": [
                {"name": "gemm", "kind": "kernel", "trials": 3,
                 "wall_ms_median": 2.0, "wall_ms_mad": 0.1, "gflops": 5.0,
                 "comment": "ignored"}
            ]
        }"#;
        let r = BenchReport::from_json_str(json).unwrap();
        assert!(r.quick);
        assert_eq!(r.results.len(), 1);
        assert_eq!(r.results[0].gflops, Some(5.0));
    }

    #[test]
    fn parser_rejects_structural_violations() {
        // Kernel entry without gflops.
        let json = r#"{"schema_version": 1, "bench": "cloudgen_continuous",
            "quick": false, "machine": {"visible_cores": 4, "threads_used": 1},
            "results": [{"name": "gemm", "kind": "kernel", "trials": 3,
                         "wall_ms_median": 2.0, "wall_ms_mad": 0.1}]}"#;
        assert!(BenchReport::from_json_str(json)
            .unwrap_err()
            .contains("gflops"));
        // Wrong schema version.
        let json = r#"{"schema_version": 9, "bench": "cloudgen_continuous",
            "quick": false, "machine": {"visible_cores": 4, "threads_used": 1},
            "results": [{"name": "t", "kind": "stage", "trials": 1,
                         "wall_ms_median": 2.0, "wall_ms_mad": 0.1}]}"#;
        assert!(BenchReport::from_json_str(json)
            .unwrap_err()
            .contains("schema_version"));
        // Malformed JSON.
        assert!(BenchReport::from_json_str("{\"schema_version\": ").is_err());
        // String escapes round-trip.
        let mut r = BenchReport {
            schema_version: SCHEMA_VERSION,
            bench: SUITE.into(),
            quick: false,
            machine: MachineFingerprint {
                visible_cores: 1,
                threads_used: 1,
            },
            results: vec![BenchEntry {
                name: "we\"ird\\name\n".into(),
                kind: "stage".into(),
                trials: 1,
                wall_ms_median: 1.0,
                wall_ms_mad: 0.0,
                gflops: None,
                throughput: None,
                throughput_unit: None,
            }],
        };
        r.results[0].throughput_unit = Some("tabs\tand\rreturns".into());
        let back = BenchReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back.results[0].name, "we\"ird\\name\n");
        assert_eq!(
            back.results[0].throughput_unit.as_deref(),
            Some("tabs\tand\rreturns")
        );
    }
}
