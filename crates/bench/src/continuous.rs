//! Continuous benchmark harness behind the `cloudgen-bench` binary.
//!
//! Two families of benchmarks share one report format:
//!
//! - **kernel** benches time the numeric primitives in isolation (GEMM,
//!   LSTM forward/backward, one Adam step) and report GFLOP/s using the
//!   exact flop counts the profiling layer (`obsv::profile`) attributes to
//!   each kernel — the same accounting a `--profile-trace` run sees;
//! - **stage** benches time the paper pipeline end to end at toy scale
//!   (train, generate, pack) and report domain throughput (tokens/sec,
//!   jobs/sec, placements/sec).
//!
//! Every benchmark runs `warmup` discarded iterations then `trials` timed
//! ones; the report keeps the median and the MAD (median absolute
//! deviation) so a comparison can separate drift from noise. Reports are
//! schema-versioned JSON with a machine fingerprint; [`compare`] gates two
//! reports against a regression threshold, the backbone of the CI
//! `bench-smoke` job.

use linalg::Mat;
use nn::{Adam, AdamConfig, Lstm};
use obsv::{profile, Profiler, Stopwatch};
use serde::{Deserialize, Serialize};

/// Bump when the report layout changes incompatibly; `compare` refuses to
/// diff reports across schema versions.
pub const SCHEMA_VERSION: u32 = 1;

/// Name of the benchmark suite recorded in every report.
pub const SUITE: &str = "cloudgen_continuous";

/// Where the benchmark ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineFingerprint {
    /// Cores visible to the process (`available_parallelism`).
    pub visible_cores: usize,
    /// Worker threads the stage benches were configured with.
    pub threads_used: usize,
}

impl MachineFingerprint {
    /// Fingerprints the current machine.
    pub fn current(threads_used: usize) -> Self {
        Self {
            visible_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            threads_used,
        }
    }
}

/// One benchmark's aggregated timings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Benchmark name (`gemm`, `lstm-fwd`, `train`, ...).
    pub name: String,
    /// `"kernel"` or `"stage"`.
    pub kind: String,
    /// Timed iterations that went into the statistics.
    pub trials: usize,
    /// Median wall time per iteration, milliseconds.
    pub wall_ms_median: f64,
    /// Median absolute deviation of the per-iteration wall times, ms.
    pub wall_ms_mad: f64,
    /// Kernel arithmetic throughput (flops from the profiling layer's
    /// work accounting over the median time). Kernel benches only.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub gflops: Option<f64>,
    /// Domain throughput at the median (tokens/sec, jobs/sec, ...).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub throughput: Option<f64>,
    /// Unit for `throughput`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub throughput_unit: Option<String>,
}

/// A full benchmark report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Layout version; see [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Suite name; see [`SUITE`].
    pub bench: String,
    /// True when the run used the reduced `--quick` iteration counts.
    pub quick: bool,
    /// Machine fingerprint for the run.
    pub machine: MachineFingerprint,
    /// One entry per benchmark, in execution order.
    pub results: Vec<BenchEntry>,
}

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct BenchOpts {
    /// Reduced iteration counts for CI smoke runs.
    pub quick: bool,
    /// Worker threads for the stage benches.
    pub threads: usize,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            quick: false,
            threads: 1,
        }
    }
}

/// Median of a non-empty sample (interpolated for even sizes).
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty sample");
    let mut s = xs.to_vec();
    s.sort_by(f64::total_cmp);
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

/// Median absolute deviation around the median.
pub fn mad(xs: &[f64]) -> f64 {
    let m = median(xs);
    let devs: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&devs)
}

/// Runs `warmup` discarded then `trials` timed iterations; returns the
/// per-iteration wall times in milliseconds.
fn time_trials(warmup: usize, trials: usize, mut f: impl FnMut()) -> Vec<f64> {
    for _ in 0..warmup {
        f();
    }
    (0..trials)
        .map(|_| {
            let t = Stopwatch::new();
            f();
            t.elapsed_ms()
        })
        .collect()
}

/// Runs `f` once under a fresh profiler and returns the flops the work
/// accounting attributed to it (inclusive, single-threaded).
fn harvest_flops(f: impl FnOnce()) -> u64 {
    let p = Profiler::new();
    {
        let _act = p.activate("harvest");
        let _span = profile::span("harvest-root");
        f();
    }
    p.spans()
        .iter()
        .find(|s| s.name == "harvest-root")
        .map_or(0, |s| s.flops)
}

fn entry_from_trials(
    name: &str,
    kind: &str,
    times_ms: Vec<f64>,
    flops: Option<u64>,
    throughput_units: Option<(f64, &str)>,
) -> BenchEntry {
    let med = median(&times_ms);
    let gflops = flops.map(|fl| fl as f64 / (med / 1e3).max(1e-12) / 1e9);
    let (throughput, throughput_unit) = match throughput_units {
        Some((units, unit)) => (
            Some(units / (med / 1e3).max(1e-12)),
            Some(unit.to_string()),
        ),
        None => (None, None),
    };
    BenchEntry {
        name: name.to_string(),
        kind: kind.to_string(),
        trials: times_ms.len(),
        wall_ms_median: med,
        wall_ms_mad: mad(&times_ms),
        gflops,
        throughput,
        throughput_unit,
    }
}

/// Names of all benchmarks [`run_benches`] executes, in order.
pub fn bench_names() -> Vec<(&'static str, &'static str)> {
    vec![
        ("gemm", "kernel"),
        ("lstm-fwd", "kernel"),
        ("lstm-bwd", "kernel"),
        ("adam-step", "kernel"),
        ("epoch-2x200", "stage"),
        ("train", "stage"),
        ("generate", "stage"),
        ("pack", "stage"),
    ]
}

/// End-to-end training epoch on the paper-scale network: a 2-layer,
/// 200-unit [`nn::LstmNetwork`] with skip connection, two minibatches of
/// batch 32 × 8 steps, full forward + BPTT + one Adam step per minibatch.
/// This is the number ROADMAP item 1 exists to shrink; kernel-level wins
/// that do not move it are not real.
fn epoch_bench(opts: &BenchOpts, log: &mut dyn FnMut(&str)) -> BenchEntry {
    use nn::loss::softmax_cross_entropy;
    use nn::LstmNetwork;

    let (warmup, trials) = if opts.quick { (0, 1) } else { (1, 3) };
    const BATCH: usize = 32;
    const STEPS: usize = 8;
    const IN: usize = 16;
    const HID: usize = 200;
    const MINIBATCHES: usize = 2;

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0x2b7a);
    let mut net = LstmNetwork::with_skip(IN, HID, 2, IN, &mut rng);
    let mut opt = Adam::new(AdamConfig::default());
    let xs: Vec<Vec<Mat>> = (0..MINIBATCHES)
        .map(|m| {
            (0..STEPS)
                .map(|t| {
                    Mat::from_fn(BATCH, IN, |r, c| {
                        ((m * 131 + t * 17 + r * 3 + c) as f64 * 0.13).sin() * 0.4
                    })
                })
                .collect()
        })
        .collect();
    let targets: Vec<usize> = (0..BATCH).map(|r| r % IN).collect();

    let times = time_trials(warmup, trials, || {
        for mb in &xs {
            net.zero_grad();
            let (logits, cache) = net.forward(mb);
            let d: Vec<Mat> = logits
                .iter()
                .map(|l| {
                    let (_, _, mut g) = softmax_cross_entropy(l, &targets);
                    g.scale(1.0 / STEPS as f64);
                    g
                })
                .collect();
            let _ = net.backward(&cache, &d);
            opt.step(&mut net.params_mut()).expect("finite gradients");
        }
    });
    log("epoch-2x200 done");
    entry_from_trials(
        "epoch-2x200",
        "stage",
        times,
        None,
        Some(((MINIBATCHES * BATCH * STEPS) as f64, "tokens/sec")),
    )
}

fn kernel_benches(opts: &BenchOpts, log: &mut dyn FnMut(&str)) -> Vec<BenchEntry> {
    let (warmup, trials) = if opts.quick { (1, 3) } else { (3, 9) };
    let mut out = Vec::new();

    // GEMM: the fused LSTM pre-activation shape at paper scale — a
    // `(batch, in+hidden) x (in+hidden, 4*hidden)` product for a 200-unit
    // layer reading a 200-wide layer below. This is the exact product the
    // recurrent hot path runs once per layer per timestep.
    const GEMM_M: usize = 32;
    const GEMM_K: usize = 400;
    const GEMM_N: usize = 800;
    let a = Mat::from_fn(GEMM_M, GEMM_K, |r, c| ((r * 31 + c) % 17) as f64 * 0.03 - 0.2);
    let b = Mat::from_fn(GEMM_K, GEMM_N, |r, c| ((r + c * 13) % 23) as f64 * 0.02 - 0.1);
    let flops = harvest_flops(|| {
        let _ = a.matmul(&b);
    });
    let times = time_trials(warmup, trials, || {
        let c = a.matmul(&b);
        assert!(c.as_slice()[0].is_finite());
    });
    log("gemm done");
    out.push(entry_from_trials("gemm", "kernel", times, Some(flops), None));

    // LSTM forward/backward at the paper's network scale: 2 layers of 200
    // hidden units, minibatch 32 (the shapes ROADMAP item 1 targets).
    const BATCH: usize = 32;
    const STEPS: usize = 8;
    const IN: usize = 16;
    const HID: usize = 200;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0xbe7c);
    let mut lstm = Lstm::new(IN, HID, 2, &mut rng);
    let xs: Vec<Mat> = (0..STEPS)
        .map(|t| Mat::from_fn(BATCH, IN, |r, c| ((t + r * 3 + c) as f64 * 0.13).sin() * 0.4))
        .collect();
    let fwd_flops = harvest_flops(|| {
        let _ = lstm.forward(&xs);
    });
    let times = time_trials(warmup, trials, || {
        let (h, _) = lstm.forward(&xs);
        assert!(h[STEPS - 1].as_slice()[0].is_finite());
    });
    log("lstm-fwd done");
    out.push(entry_from_trials(
        "lstm-fwd",
        "kernel",
        times,
        Some(fwd_flops),
        Some(((BATCH * STEPS) as f64, "tokens/sec")),
    ));

    let (out_seq, cache) = lstm.forward(&xs);
    let d_out: Vec<Mat> = out_seq
        .iter()
        .map(|h| Mat::filled(h.rows(), h.cols(), 0.5))
        .collect();
    let bwd_flops = harvest_flops(|| {
        lstm.zero_grad();
        let _ = lstm.backward(&cache, &d_out);
    });
    let times = time_trials(warmup, trials, || {
        lstm.zero_grad();
        let dxs = lstm.backward(&cache, &d_out);
        assert!(dxs[0].as_slice()[0].is_finite());
    });
    log("lstm-bwd done");
    out.push(entry_from_trials(
        "lstm-bwd",
        "kernel",
        times,
        Some(bwd_flops),
        Some(((BATCH * STEPS) as f64, "tokens/sec")),
    ));

    // Adam: one optimizer step over the LSTM's parameters with the
    // gradients the backward pass above accumulated.
    lstm.zero_grad();
    let _ = lstm.backward(&cache, &d_out);
    let mut opt = Adam::new(AdamConfig::default());
    let step_flops = harvest_flops(|| {
        opt.step(&mut lstm.params_mut()).expect("finite gradients");
    });
    let times = time_trials(warmup, trials, || {
        opt.step(&mut lstm.params_mut()).expect("finite gradients");
    });
    log("adam-step done");
    out.push(entry_from_trials(
        "adam-step",
        "kernel",
        times,
        Some(step_flops),
        None,
    ));
    out
}

fn stage_benches(opts: &BenchOpts, log: &mut dyn FnMut(&str)) -> Vec<BenchEntry> {
    use cloudgen::lifetimes::LifetimeHead;
    use cloudgen::{
        ArrivalTarget, BatchArrivalModel, FeatureSpace, FlavorModel, GeneratorConfig,
        LifetimeModel, Parallelism, TokenStream, TraceGenerator, TrainConfig,
    };
    use glm::{DohStrategy, ElasticNet};
    use obsv::NullRecorder;
    use survival::LifetimeBins;
    use synth::{CloudWorld, WorldConfig};
    use trace::period::TemporalFeaturesSpec;
    use trace::ObservationWindow;

    let (warmup, trials) = if opts.quick { (0, 1) } else { (1, 3) };
    const TRAIN_DAYS: u64 = 2;
    const GEN_PERIODS: u64 = 2 * 288;

    let world = CloudWorld::new(WorldConfig::azure_like(0.6), 23);
    let history = world.generate(TRAIN_DAYS as u32 + 1);
    let window = ObservationWindow::new(0, TRAIN_DAYS * 86_400);
    let train = window.apply_unshifted(&history);
    let bins = LifetimeBins::paper_47();
    let temporal = TemporalFeaturesSpec::new(TRAIN_DAYS as usize);
    let space = FeatureSpace::new(train.catalog.len(), bins.clone(), temporal);
    let stream = TokenStream::from_trace(&train, &bins, window.censor_at);
    let cfg = TrainConfig {
        epochs: if opts.quick { 1 } else { 2 },
        hidden: 24,
        ..TrainConfig::tiny()
    };
    let par = Parallelism::with_threads(opts.threads.max(1), 2);
    let tokens = (stream.len() * cfg.epochs) as f64;

    let mut out = Vec::new();

    let mut last_models = None;
    let times = time_trials(warmup, trials, || {
        let f = FlavorModel::fit_par_recorded(&stream, space.clone(), cfg, par, &NullRecorder);
        let l = LifetimeModel::fit_par_recorded(
            &stream,
            space.clone(),
            cfg,
            LifetimeHead::Hazard,
            par,
            &NullRecorder,
        );
        last_models = Some((f, l));
    });
    log("train done");
    out.push(entry_from_trials(
        "train",
        "stage",
        times,
        None,
        Some((tokens, "tokens/sec")),
    ));

    let (flavors, lifetimes) = last_models.expect("at least one timed trial");
    let arrivals = BatchArrivalModel::fit(
        &train,
        window.end,
        ArrivalTarget::Batches,
        temporal,
        ElasticNet::ridge(1.0),
        DohStrategy::paper_default(),
    )
    .expect("arrival fit");
    let generator = TraceGenerator {
        arrivals,
        fallback: None,
        flavors,
        lifetimes,
        config: GeneratorConfig::default(),
    };
    let first = TRAIN_DAYS * 288;
    let probe = generator.generate_par(first, GEN_PERIODS, world.catalog(), 7, opts.threads);
    let mut generated = probe.clone();
    let times = time_trials(warmup, trials, || {
        generated = generator.generate_par(first, GEN_PERIODS, world.catalog(), 7, opts.threads);
    });
    log("generate done");
    out.push(entry_from_trials(
        "generate",
        "stage",
        times,
        None,
        Some((probe.len() as f64, "jobs/sec")),
    ));

    // Pack the generated trace under one fixed scheduling tuple. The trace
    // can be small at this scale; fall back to the training trace so the
    // pack bench always has arrivals to place.
    let to_pack = if generated.len() >= 64 { &generated } else { &train };
    let tuple = sched::SchedulingTuple {
        start_point: 0,
        n_servers: 24,
        cpu_cap: 64.0,
        mem_cap: 256.0,
        algorithm: sched::PlacementAlgorithm::BusiestFit,
    };
    let mut placed = 0usize;
    let times = time_trials(warmup, trials, || {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(41);
        let r = sched::pack_trace(to_pack, tuple, sched::PackingConfig::default(), &mut rng);
        placed = r.placed.max(1);
    });
    log("pack done");
    out.push(entry_from_trials(
        "pack",
        "stage",
        times,
        None,
        Some((placed as f64, "placements/sec")),
    ));
    out
}

/// Runs the full suite and assembles the report.
pub fn run_benches(opts: BenchOpts, mut log: impl FnMut(&str)) -> BenchReport {
    let mut results = kernel_benches(&opts, &mut log);
    results.push(epoch_bench(&opts, &mut log));
    results.extend(stage_benches(&opts, &mut log));
    BenchReport {
        schema_version: SCHEMA_VERSION,
        bench: SUITE.to_string(),
        quick: opts.quick,
        machine: MachineFingerprint::current(opts.threads.max(1)),
        results,
    }
}


/// Structural validation of a report as parsed JSON — the shape the CI
/// smoke job asserts on, independent of serde's own deserialization.
pub fn validate_report(doc: &serde_json::Value) -> Result<(), String> {
    let schema = doc["schema_version"]
        .as_u64()
        .ok_or("schema_version missing or not an integer")?;
    if schema != u64::from(SCHEMA_VERSION) {
        return Err(format!(
            "schema_version {schema} != supported {SCHEMA_VERSION}"
        ));
    }
    if doc["bench"].as_str() != Some(SUITE) {
        return Err(format!("bench is not {SUITE:?}"));
    }
    let machine = &doc["machine"];
    if machine["visible_cores"].as_u64().is_none_or(|c| c == 0) {
        return Err("machine.visible_cores missing or zero".into());
    }
    if machine["threads_used"].as_u64().is_none_or(|t| t == 0) {
        return Err("machine.threads_used missing or zero".into());
    }
    let results = doc["results"]
        .as_array()
        .ok_or("results missing or not an array")?;
    if results.is_empty() {
        return Err("results is empty".into());
    }
    for (i, r) in results.iter().enumerate() {
        let name = r["name"]
            .as_str()
            .ok_or_else(|| format!("results[{i}].name missing"))?;
        match r["kind"].as_str() {
            Some("kernel") | Some("stage") => {}
            other => return Err(format!("results[{i}] ({name}): bad kind {other:?}")),
        }
        let med = r["wall_ms_median"]
            .as_f64()
            .ok_or_else(|| format!("results[{i}] ({name}): wall_ms_median missing"))?;
        if !med.is_finite() || med < 0.0 {
            return Err(format!("results[{i}] ({name}): wall_ms_median {med} invalid"));
        }
        let dev = r["wall_ms_mad"]
            .as_f64()
            .ok_or_else(|| format!("results[{i}] ({name}): wall_ms_mad missing"))?;
        if !dev.is_finite() || dev < 0.0 {
            return Err(format!("results[{i}] ({name}): wall_ms_mad {dev} invalid"));
        }
        if r["trials"].as_u64().is_none_or(|t| t == 0) {
            return Err(format!("results[{i}] ({name}): trials missing or zero"));
        }
        if r["kind"] == "kernel" && r["gflops"].as_f64().is_none_or(|g| !(g > 0.0)) {
            return Err(format!("results[{i}] ({name}): kernel without positive gflops"));
        }
    }
    Ok(())
}

/// One benchmark that slowed past the allowed envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Benchmark name.
    pub name: String,
    /// Baseline median, ms.
    pub old_ms: f64,
    /// Candidate median, ms.
    pub new_ms: f64,
    /// The envelope the candidate had to stay under, ms.
    pub allowed_ms: f64,
}

/// Compares a candidate report against a baseline.
///
/// A benchmark regresses when its new median exceeds
/// `old_median * (1 + threshold) + 3 * max(old_mad, new_mad)` — the MAD
/// term absorbs trial noise so a jittery benchmark doesn't trip the gate
/// at small thresholds. A benchmark present in the baseline but missing
/// from the candidate is reported as a regression with `new_ms = NaN`
/// (a vanished benchmark must be an explicit baseline update, not a
/// silent pass).
///
/// # Errors
///
/// If the reports' schema versions differ (from each other or from this
/// binary's supported version).
pub fn compare(
    baseline: &BenchReport,
    candidate: &BenchReport,
    threshold: f64,
) -> Result<Vec<Regression>, String> {
    if baseline.schema_version != SCHEMA_VERSION || candidate.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema mismatch: baseline v{}, candidate v{}, supported v{SCHEMA_VERSION}",
            baseline.schema_version, candidate.schema_version
        ));
    }
    let mut regressions = Vec::new();
    for old in &baseline.results {
        match candidate.results.iter().find(|r| r.name == old.name) {
            None => regressions.push(Regression {
                name: old.name.clone(),
                old_ms: old.wall_ms_median,
                new_ms: f64::NAN,
                allowed_ms: f64::NAN,
            }),
            Some(new) => {
                let noise = 3.0 * old.wall_ms_mad.max(new.wall_ms_mad).max(0.05);
                let allowed = old.wall_ms_median * (1.0 + threshold) + noise;
                if new.wall_ms_median > allowed {
                    regressions.push(Regression {
                        name: old.name.clone(),
                        old_ms: old.wall_ms_median,
                        new_ms: new.wall_ms_median,
                        allowed_ms: allowed,
                    });
                }
            }
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, med: f64, dev: f64) -> BenchEntry {
        BenchEntry {
            name: name.into(),
            kind: "kernel".into(),
            trials: 5,
            wall_ms_median: med,
            wall_ms_mad: dev,
            gflops: Some(1.0),
            throughput: None,
            throughput_unit: None,
        }
    }

    fn report(entries: Vec<BenchEntry>) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            bench: SUITE.into(),
            quick: true,
            machine: MachineFingerprint {
                visible_cores: 4,
                threads_used: 1,
            },
            results: entries,
        }
    }

    #[test]
    fn median_and_mad_basics() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(mad(&[1.0, 2.0, 3.0]), 1.0);
        assert_eq!(mad(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn identical_reports_have_no_regressions() {
        let r = report(vec![entry("gemm", 2.0, 0.1), entry("train", 40.0, 2.0)]);
        assert!(compare(&r, &r, 0.3).unwrap().is_empty());
    }

    #[test]
    fn slowdown_past_threshold_is_flagged() {
        let old = report(vec![entry("gemm", 2.0, 0.01)]);
        let new = report(vec![entry("gemm", 3.5, 0.01)]);
        let regs = compare(&old, &new, 0.3).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "gemm");
        // Within threshold + noise passes.
        let ok = report(vec![entry("gemm", 2.5, 0.01)]);
        assert!(compare(&old, &ok, 0.3).unwrap().is_empty());
    }

    #[test]
    fn noisy_benchmarks_get_mad_slack() {
        let old = report(vec![entry("train", 10.0, 2.0)]);
        // 14 > 10 * 1.1 but within 3*MAD of the jitter.
        let new = report(vec![entry("train", 14.0, 2.0)]);
        assert!(compare(&old, &new, 0.1).unwrap().is_empty());
    }

    #[test]
    fn vanished_benchmark_is_a_regression() {
        let old = report(vec![entry("gemm", 2.0, 0.1), entry("pack", 1.0, 0.1)]);
        let new = report(vec![entry("gemm", 2.0, 0.1)]);
        let regs = compare(&old, &new, 0.3).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "pack");
        assert!(regs[0].new_ms.is_nan());
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let old = report(vec![entry("gemm", 2.0, 0.1)]);
        let mut new = old.clone();
        new.schema_version = SCHEMA_VERSION + 1;
        assert!(compare(&old, &new, 0.3).is_err());
    }

    #[test]
    fn validator_accepts_serialized_report_and_rejects_mutations() {
        let r = report(vec![entry("gemm", 2.0, 0.1)]);
        let doc: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        validate_report(&doc).unwrap();

        let mut bad = doc.clone();
        bad["schema_version"] = serde_json::json!(99);
        assert!(validate_report(&bad).is_err());
        let mut bad = doc.clone();
        bad["machine"]["visible_cores"] = serde_json::json!(0);
        assert!(validate_report(&bad).is_err());
        let mut bad = doc.clone();
        bad["results"][0]["kind"] = serde_json::json!("mystery");
        assert!(validate_report(&bad).is_err());
        let mut bad = doc.clone();
        bad["results"][0]["gflops"] = serde_json::json!(null);
        assert!(validate_report(&bad).is_err(), "kernel needs gflops");
        let mut bad = doc;
        bad["results"] = serde_json::json!([]);
        assert!(validate_report(&bad).is_err());
    }

    #[test]
    fn kernel_benches_report_positive_gflops() {
        let opts = BenchOpts {
            quick: true,
            threads: 1,
        };
        let entries = kernel_benches(&opts, &mut |_| {});
        assert_eq!(entries.len(), 4);
        for e in &entries {
            assert_eq!(e.kind, "kernel");
            let g = e.gflops.expect("kernel gflops");
            assert!(g > 0.0, "{}: gflops {g}", e.name);
            assert!(e.wall_ms_median >= 0.0);
        }
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["gemm", "lstm-fwd", "lstm-bwd", "adam-step"]);
    }
}
