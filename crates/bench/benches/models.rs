//! Criterion benchmarks for the statistical substrates: Poisson IRLS
//! fitting (stage 1) and Kaplan–Meier estimation (lifetime baselines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glm::{ElasticNet, PoissonRegression};
use linalg::Mat;
use survival::{CensoringPolicy, KaplanMeier, LifetimeBins, Observation};

fn poisson_data(rows: usize, cols: usize) -> (Mat, Vec<f64>) {
    let x = Mat::from_fn(rows, cols, |r, c| if (r + c) % 7 == 0 { 1.0 } else { 0.0 });
    let y: Vec<f64> = (0..rows).map(|r| ((r * 13) % 9) as f64).collect();
    (x, y)
}

fn bench_poisson_irls(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisson_irls");
    group.sample_size(10);
    // 2880 periods (10 days) x 41 temporal features is the experiment shape.
    for &(rows, cols) in &[(2880usize, 41usize), (2880, 91)] {
        let (x, y) = poisson_data(rows, cols);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &rows,
            |bench, _| {
                bench.iter(|| {
                    std::hint::black_box(
                        PoissonRegression::fit(&x, &y, ElasticNet::ridge(1.0), 30, 1e-7).unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_km_fit(c: &mut Criterion) {
    let bins = LifetimeBins::paper_47();
    let obs: Vec<Observation> = (0..100_000)
        .map(|i| Observation {
            bin: (i * 7) % 47,
            censored: i % 29 == 0,
        })
        .collect();
    c.bench_function("km_fit_100k_obs_47bins", |bench| {
        bench.iter(|| {
            std::hint::black_box(KaplanMeier::fit(
                &bins,
                &obs,
                CensoringPolicy::CensoringAware,
                0.0,
            ))
        });
    });
}

fn bench_hazard_sampling(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use survival::funcs::sample_hazard_chain;
    let hazard: Vec<f64> = (0..47).map(|i| 0.02 + 0.01 * (i % 5) as f64).collect();
    c.bench_function("hazard_chain_sample_47bins", |bench| {
        let mut rng = StdRng::seed_from_u64(1);
        bench.iter(|| std::hint::black_box(sample_hazard_chain(&hazard, &mut rng)));
    });
}

criterion_group!(
    benches,
    bench_poisson_irls,
    bench_km_fit,
    bench_hazard_sampling
);
criterion_main!(benches);
