//! Criterion benchmarks for the scheduler substrate: packing runs per
//! placement algorithm (Fig. 10 inner loop) and reuse-distance computation
//! (Fig. 9 inner loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sched::{
    pack_trace, reuse_distance_histogram, PackingConfig, PlacementAlgorithm, SchedulingTuple,
};
use synth::{CloudWorld, WorldConfig};
use trace::Trace;

fn test_trace() -> Trace {
    CloudWorld::new(WorldConfig::azure_like(1.0), 7).generate(2)
}

fn bench_packing(c: &mut Criterion) {
    let trace = test_trace();
    let mut group = c.benchmark_group("pack_trace");
    group.sample_size(20);
    for alg in PlacementAlgorithm::ALL {
        let tuple = SchedulingTuple {
            start_point: 0,
            n_servers: 40,
            cpu_cap: 48.0,
            mem_cap: 128.0,
            algorithm: alg,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{alg:?}")),
            &tuple,
            |bench, &tuple| {
                bench.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    std::hint::black_box(pack_trace(
                        &trace,
                        tuple,
                        PackingConfig::default(),
                        &mut rng,
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_reuse(c: &mut Criterion) {
    let trace = test_trace();
    c.bench_function(&format!("reuse_distance_{}_jobs", trace.len()), |bench| {
        bench.iter(|| std::hint::black_box(reuse_distance_histogram(&trace)));
    });
}

fn bench_placement_cache(c: &mut Criterion) {
    // Skewed synthetic request stream over a wide key universe so the
    // cache actually churns: large capacities are where the old
    // scan-the-Vec implementation collapsed to O(capacity) per access.
    let requests: Vec<u16> = {
        let mut state = 42u64;
        (0..200_000usize)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) as u16
            })
            .collect()
    };
    let mut group = c.benchmark_group("placement_cache_access");
    for capacity in [64usize, 1024, 4096, 16_384] {
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &capacity,
            |bench, &capacity| {
                bench.iter(|| {
                    let mut cache = sched::PlacementCache::new(capacity);
                    for &f in &requests {
                        std::hint::black_box(cache.access(f));
                    }
                    cache.hit_rate()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_packing, bench_reuse, bench_placement_cache);
criterion_main!(benches);
