//! Criterion benchmarks for the neural substrate: GEMM, LSTM forward and
//! BPTT throughput at the experiment scale and near paper scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linalg::Mat;
use nn::{Lstm, LstmNetwork};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[32usize, 128, 256] {
        let a = Mat::from_fn(n, n, |r, cc| ((r * 31 + cc * 7) % 13) as f64 * 0.1);
        let b = Mat::from_fn(n, n, |r, cc| ((r * 17 + cc * 3) % 11) as f64 * 0.1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_lstm_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("lstm_forward_seq32");
    for &(hidden, layers) in &[(48usize, 1usize), (200, 2)] {
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = Lstm::new(64, hidden, layers, &mut rng);
        let xs: Vec<Mat> = (0..32).map(|_| Mat::filled(8, 64, 0.1)).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("h{hidden}x{layers}")),
            &hidden,
            |bench, _| {
                bench.iter(|| std::hint::black_box(lstm.forward(&xs)));
            },
        );
    }
    group.finish();
}

fn bench_lstm_bptt(c: &mut Criterion) {
    let mut group = c.benchmark_group("lstm_train_step_seq32");
    group.sample_size(10);
    for &(hidden, layers) in &[(48usize, 1usize), (200, 2)] {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = LstmNetwork::new(64, hidden, layers, 16, &mut rng);
        let xs: Vec<Mat> = (0..32).map(|_| Mat::filled(8, 64, 0.1)).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("h{hidden}x{layers}")),
            &hidden,
            |bench, _| {
                bench.iter(|| {
                    net.zero_grad();
                    let (logits, cache) = net.forward(&xs);
                    let d: Vec<Mat> = logits
                        .iter()
                        .map(|l| Mat::filled(l.rows(), l.cols(), 0.01))
                        .collect();
                    std::hint::black_box(net.backward(&cache, &d));
                });
            },
        );
    }
    group.finish();
}

fn bench_generation_step(c: &mut Criterion) {
    // One-step stateful inference — the inner loop of trace generation.
    let mut rng = StdRng::seed_from_u64(3);
    let net = LstmNetwork::new(150, 48, 1, 47, &mut rng);
    let x = Mat::filled(1, 150, 0.1);
    c.bench_function("lstm_generation_step_h48", |bench| {
        let mut state = net.zero_state(1);
        bench.iter(|| std::hint::black_box(net.step(&x, &mut state)));
    });
}

criterion_group!(
    benches,
    bench_gemm,
    bench_lstm_forward,
    bench_lstm_bptt,
    bench_generation_step
);
criterion_main!(benches);
