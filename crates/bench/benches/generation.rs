//! Criterion benchmarks for end-to-end trace generation: ground-truth world
//! simulation (the data substrate) and the three baseline/LSTM generators'
//! sampling throughput.

use cloudgen::{
    ArrivalTarget, BatchArrivalModel, FlavorModel, GeneratorConfig, LifetimeModel, TrainConfig,
};
use cloudgen::{FeatureSpace, NaiveGenerator, SimpleBatchGenerator, TokenStream, TraceGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use glm::{DohStrategy, ElasticNet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use survival::LifetimeBins;
use synth::{CloudWorld, WorldConfig};
use trace::period::TemporalFeaturesSpec;
use trace::Trace;

struct Fixture {
    train: Trace,
    space: FeatureSpace,
    lstm: TraceGenerator,
    naive: NaiveGenerator,
    simple: SimpleBatchGenerator,
}

fn fixture() -> Fixture {
    let world = CloudWorld::new(WorldConfig::azure_like(0.6), 17);
    let train = world.generate(3);
    let secs = 3 * 86_400;
    let temporal = TemporalFeaturesSpec::new(3);
    let bins = LifetimeBins::paper_47();
    let space = FeatureSpace::new(world.catalog().len(), bins.clone(), temporal);
    let stream = TokenStream::from_trace(&train, &bins, secs);
    let cfg = TrainConfig {
        epochs: 2,
        ..TrainConfig::tiny()
    };
    let arrivals = BatchArrivalModel::fit(
        &train,
        secs,
        ArrivalTarget::Batches,
        temporal,
        ElasticNet::ridge(1.0),
        DohStrategy::paper_default(),
    )
    .unwrap();
    let lstm = TraceGenerator {
        arrivals,
        fallback: Some(cloudgen::GenFallback::fit(&stream, &space)),
        flavors: FlavorModel::fit(&stream, space.clone(), cfg),
        lifetimes: LifetimeModel::fit(&stream, space.clone(), cfg),
        config: GeneratorConfig::default(),
    };
    let naive = NaiveGenerator::fit(&train, secs, space.clone()).unwrap();
    let simple = SimpleBatchGenerator::fit(
        &train,
        secs,
        space.clone(),
        temporal,
        DohStrategy::paper_default(),
    )
    .unwrap();
    Fixture {
        train,
        space,
        lstm,
        naive,
        simple,
    }
}

fn bench_generators(c: &mut Criterion) {
    let f = fixture();
    let catalog = f.train.catalog.clone();
    let mut group = c.benchmark_group("generate_one_day");
    group.sample_size(10);
    group.bench_function("world_ground_truth", |b| {
        let world = CloudWorld::new(WorldConfig::azure_like(0.6), 18);
        b.iter(|| std::hint::black_box(world.generate(1)));
    });
    group.bench_function("naive", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            std::hint::black_box(f.naive.generate(0, 288, &catalog, &mut rng))
        });
    });
    group.bench_function("simple_batch", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            std::hint::black_box(f.simple.generate(0, 288, &catalog, &mut rng))
        });
    });
    group.bench_function("lstm", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            std::hint::black_box(f.lstm.generate(0, 288, &catalog, &mut rng))
        });
    });
    group.finish();
    let _ = f.space;
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
