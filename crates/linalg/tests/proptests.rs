//! Property-based tests for the linear-algebra substrate.

use linalg::numeric::{bce_with_logits, log_sum_exp, sigmoid, softmax_inplace};
use linalg::{solve_spd, Cholesky, Mat};
use proptest::prelude::*;

fn small_val() -> impl Strategy<Value = f64> {
    (-10.0..10.0f64)
}

fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(small_val(), rows * cols)
        .prop_map(move |v| Mat::from_vec(rows, cols, v))
}

proptest! {
    #[test]
    fn matmul_associative(
        a in mat_strategy(3, 4),
        b in mat_strategy(4, 2),
        c in mat_strategy(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn matmul_distributes_over_add(
        a in mat_strategy(3, 3),
        b in mat_strategy(3, 3),
        c in mat_strategy(3, 3),
    ) {
        let mut bc = b.clone();
        bc.axpy(1.0, &c);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.axpy(1.0, &a.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn transpose_of_product(a in mat_strategy(3, 4), b in mat_strategy(4, 2)) {
        // (AB)^T == B^T A^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn fused_transpose_kernels_agree(a in mat_strategy(4, 3), b in mat_strategy(4, 5)) {
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_solve_roundtrip(b_entries in proptest::collection::vec(-3.0..3.0f64, 16), rhs in proptest::collection::vec(-3.0..3.0f64, 4)) {
        let b = Mat::from_vec(4, 4, b_entries);
        // A = B B^T + 4 I is SPD.
        let mut a = b.matmul_t(&b);
        for i in 0..4 {
            a[(i, i)] += 4.0;
        }
        let x = solve_spd(&a, &rhs).unwrap();
        // Verify A x == rhs.
        for i in 0..4 {
            let ax: f64 = (0..4).map(|j| a[(i, j)] * x[j]).sum();
            prop_assert!((ax - rhs[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn cholesky_log_det_positive_for_dominant(d in proptest::collection::vec(0.5..4.0f64, 5)) {
        let n = d.len();
        let a = Mat::from_fn(n, n, |r, c| if r == c { 1.0 + d[r] } else { 0.0 });
        let chol = Cholesky::factor(&a).unwrap();
        let expected: f64 = d.iter().map(|&x| (1.0 + x).ln()).sum();
        prop_assert!((chol.log_det() - expected).abs() < 1e-9);
    }

    #[test]
    fn sigmoid_in_unit_interval(x in -1e6..1e6f64) {
        let s = sigmoid(x);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn log_sum_exp_bounds(xs in proptest::collection::vec(-50.0..50.0f64, 1..20)) {
        let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lse = log_sum_exp(&xs);
        prop_assert!(lse >= m - 1e-12);
        prop_assert!(lse <= m + (xs.len() as f64).ln() + 1e-12);
    }

    #[test]
    fn softmax_is_distribution(mut xs in proptest::collection::vec(-30.0..30.0f64, 1..12)) {
        softmax_inplace(&mut xs);
        prop_assert!((xs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(xs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn bce_nonnegative(z in -100.0..100.0f64, y in 0.0..=1.0f64) {
        prop_assert!(bce_with_logits(z, y) >= -1e-12);
    }
}
