//! Overhead guard: with no profiler active, the instrumentation on the
//! GEMM hot path (one disabled span + two work-counter adds per kernel
//! call) must be negligible against the kernel itself.
//!
//! The disabled path is measured directly (a tight loop of span +
//! counter calls) and compared against the measured cost of one small
//! GEMM; the bound is deliberately loose so the test never flakes on a
//! noisy CI box while still catching an accidental allocation or lock on
//! the disabled path (those cost microseconds, not nanoseconds).

use linalg::Mat;
use obsv::profile;
use std::time::Instant;

/// Every GEMM entry point must account exactly `2·m·n·k` flops on its
/// span — the kernel benches and the roofline numbers in the bench
/// reports divide by this, so drift here silently corrupts GFLOP/s.
#[test]
fn gemm_spans_account_exactly_2mnk() {
    let prof = profile::Profiler::new();
    let a = Mat::from_fn(5, 7, |r, c| (r as f64 - c as f64) * 0.01);
    let b = Mat::from_fn(7, 3, |r, c| (r + c) as f64 * 0.01);
    {
        let _lane = prof.activate("test");
        let _ = a.matmul(&b); // (5x7)·(7x3): m=5, n=3, k=7
        let _ = a.t_matmul(&a); // (5x7)^T·(5x7): m=7, n=7, k=5
        let _ = a.matmul_t(&a); // (5x7)·(5x7)^T: m=5, n=5, k=7
    }
    let flops: Vec<u64> = prof
        .spans()
        .iter()
        .filter(|s| s.name == "gemm")
        .map(|s| s.flops)
        .collect();
    assert_eq!(
        flops,
        vec![2 * 5 * 3 * 7, 2 * 7 * 7 * 5, 2 * 5 * 5 * 7],
        "gemm flop accounting drifted from 2mnk"
    );
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

#[test]
fn disabled_profiling_is_negligible_against_gemm() {
    assert!(
        profile::current().is_none(),
        "test requires profiling off"
    );

    // Cost of the disabled instrumentation sequence, per kernel call.
    const REPS: u32 = 200_000;
    let span_trials: Vec<f64> = (0..7)
        .map(|_| {
            let t = Instant::now();
            for i in 0..REPS {
                let _g = profile::span("gemm");
                profile::add_flops(u64::from(i));
                profile::add_bytes(u64::from(i));
            }
            t.elapsed().as_secs_f64() / f64::from(REPS)
        })
        .collect();
    let per_call = median(span_trials);

    // Cost of one 64x64x64 GEMM (the smallest kernel the benches use).
    let a = Mat::from_fn(64, 64, |r, c| (r as f64 - c as f64) * 0.01);
    let b = Mat::from_fn(64, 64, |r, c| (r + c) as f64 * 0.01);
    let gemm_trials: Vec<f64> = (0..9)
        .map(|_| {
            let t = Instant::now();
            let out = a.matmul(&b);
            let dt = t.elapsed().as_secs_f64();
            assert!(out.as_slice()[0].is_finite());
            dt
        })
        .collect();
    let per_gemm = median(gemm_trials);

    // The disabled path must stay under 2% of even this small kernel and
    // under 2 µs absolute (a real regression — an allocation, a mutex, a
    // syscall — blows through both).
    assert!(
        per_call < 2e-6,
        "disabled span+counters cost {per_call:.3e}s per call"
    );
    assert!(
        per_call < per_gemm * 0.02,
        "disabled instrumentation is {:.2}% of a 64x64 GEMM ({per_call:.3e}s vs {per_gemm:.3e}s)",
        per_call / per_gemm * 100.0
    );
}
