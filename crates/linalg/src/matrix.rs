//! Row-major dense matrix type and the kernels used by the NN/GLM crates.
//!
//! The GEMM-family kernels are cache-blocked but **order-preserving**: for
//! every output element the `k` (inner-dimension) contributions are summed
//! in ascending order, exactly as the textbook triple loop would, so the
//! blocked kernels are bit-for-bit identical to their naive counterparts.
//! That property is what lets the deterministic data-parallel trainers
//! shard a batch by rows and still reproduce single-threaded results.

use crate::kernel;
use crate::pool::WorkerPool;
use obsv::profile;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Analytic work accounting for one `m x k · k x n` GEMM-family call:
/// `2·m·n·k` flops and the operand + read/write-output traffic in bytes.
/// One call per kernel invocation; with profiling off this is two
/// thread-local adds.
#[inline]
fn account_gemm(m: usize, n: usize, k: usize) {
    profile::add_flops(2 * (m as u64) * (n as u64) * (k as u64));
    profile::add_bytes(8 * ((m * k) as u64 + (k * n) as u64 + 2 * (m * n) as u64));
}

/// Whether the zero-skip fast path is exact for a GEMM: skipping
/// `0.0 * b` terms is only bit-exact when every entry of `b` is finite
/// (`0.0 * NaN = NaN` must reach the output so poisoned activations trip
/// the NaN tripwires instead of silently vanishing). The coefficient
/// operand `a` is scanned first: if it holds no exact zero the skip can
/// never fire, and the (larger) `b` finiteness scan is not paid at all —
/// this keeps small-batch generation GEMMs from spending more time
/// scanning weights than multiplying by them. Both scans are `O(len)`
/// with early exit, amortized against the `O(m·n·k)` product.
#[inline]
fn skip_ok(a: &Mat, b: &Mat) -> bool {
    a.has_zero() && !b.has_non_finite()
}

/// A dense, row-major `f64` matrix.
///
/// The storage layout is `data[r * cols + c]`. All binary operations panic on
/// dimension mismatch (documented per method); shapes are a programming
/// invariant in this workspace, not runtime input.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            let row: Vec<String> = (0..self.cols.min(8))
                .map(|c| format!("{:+.4}", self[(r, c)]))
                .collect();
            writeln!(
                f,
                "  [{}{}]",
                row.join(", "),
                if self.cols > 8 { ", …" } else { "" }
            )?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Mat {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies `src` into row `r`.
    ///
    /// # Panics
    ///
    /// Panics on row index or length mismatch.
    pub fn set_row(&mut self, r: usize, src: &[f64]) {
        assert_eq!(src.len(), self.cols, "row length mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Extracts column `c` as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "col {} out of bounds ({} cols)",
            c,
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// `self * other` (matrix product).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Mat::zeros(self.rows, other.cols);
        gemm_acc(&mut out, self, other, 1.0);
        out
    }

    /// `self^T * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn t_matmul(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.cols, other.cols);
        self.t_matmul_acc(other, &mut out);
        out
    }

    /// `out += self^T * other`, reusing the caller's output buffer — the
    /// allocation-free accumulating form of [`Mat::t_matmul`] for hot
    /// backward passes (gradient products `x^T · dz`).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows` or `out` is not
    /// `self.cols x other.cols`.
    pub fn t_matmul_acc(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "t_matmul output shape mismatch"
        );
        let _prof = profile::span("gemm");
        account_gemm(self.cols, other.cols, self.rows);
        kernel::active::t_matmul_acc(
            &mut out.data,
            self.cols,
            other.cols,
            self.rows,
            &self.data,
            &other.data,
            skip_ok(self, other),
        );
    }

    /// `self * other^T`.
    ///
    /// Cache-blocked over the rows of `other`: a block of `other` rows
    /// sized to L1 stays resident while every row of `self` sweeps past
    /// it. Each output element is still one left-to-right [`dot`], so the
    /// result is bit-identical to the unblocked kernel.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_t(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows, other.rows);
        self.matmul_t_into(other, &mut out);
        out
    }

    /// `out = self * other^T`, reusing the caller's output buffer — the
    /// allocation-free form of [`Mat::matmul_t`] for hot backward passes.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols` or `out` is not
    /// `self.rows x other.rows`.
    pub fn matmul_t_into(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "matmul_t output shape mismatch"
        );
        let _prof = profile::span("gemm");
        account_gemm(self.rows, other.rows, self.cols);
        kernel::active::matmul_t(
            &mut out.data,
            self.rows,
            other.rows,
            self.cols,
            &self.data,
            &other.data,
        );
    }

    /// Row-parallel `self * other`: the rows of `self` are partitioned
    /// into contiguous chunks and multiplied on the pool's workers. Each
    /// output row is computed by exactly the same instruction sequence as
    /// in [`Mat::matmul`], so the result is bit-for-bit identical for any
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn par_matmul(&self, other: &Mat, pool: &WorkerPool) -> Mat {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let skip = skip_ok(self, other);
        self.par_row_blocks(other.cols, pool, |rows, block| {
            let a_rows = &self.data[rows.start * self.cols..rows.end * self.cols];
            kernel::active::gemm_acc(
                &mut block.data,
                rows.len(),
                other.cols,
                self.cols,
                a_rows,
                &other.data,
                1.0,
                skip,
            );
        })
    }

    /// Row-parallel `self * other^T`; same determinism contract as
    /// [`Mat::par_matmul`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn par_matmul_t(&self, other: &Mat, pool: &WorkerPool) -> Mat {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        self.par_row_blocks(other.rows, pool, |rows, block| {
            let a_rows = &self.data[rows.start * self.cols..rows.end * self.cols];
            kernel::active::matmul_t(
                &mut block.data,
                rows.len(),
                other.rows,
                self.cols,
                a_rows,
                &other.data,
            );
        })
    }

    /// Shared scaffolding for the `par_*` kernels: partitions `self`'s
    /// rows into one contiguous chunk per worker, fills a zeroed output
    /// block per chunk via `fill`, and stitches the blocks back together
    /// in chunk order.
    fn par_row_blocks(
        &self,
        out_cols: usize,
        pool: &WorkerPool,
        fill: impl Fn(&std::ops::Range<usize>, &mut Mat) + Sync,
    ) -> Mat {
        let chunk = self.rows.div_ceil(pool.threads().max(1)).max(1);
        let ranges: Vec<std::ops::Range<usize>> = (0..self.rows)
            .step_by(chunk)
            .map(|r0| r0..(r0 + chunk).min(self.rows))
            .collect();
        let inner = self.cols;
        let blocks = pool.map(&ranges, |_, rows| {
            // Each worker's share of the product is its own GEMM kernel
            // call for accounting (the inner dimension is self.cols for
            // both par_* kernels).
            let _prof = profile::span("gemm");
            account_gemm(rows.len(), out_cols, inner);
            let mut block = Mat::zeros(rows.len(), out_cols);
            fill(rows, &mut block);
            block
        });
        let mut out = Mat::zeros(self.rows, out_cols);
        let mut at = 0;
        for block in blocks {
            out.data[at..at + block.data.len()].copy_from_slice(&block.data);
            at += block.data.len();
        }
        out
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Mat) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// In-place `self *= alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// In-place elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard_assign(&mut self, other: &Mat) {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a *= b;
        }
    }

    /// Elementwise map, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Sets all entries to zero (reuses storage).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Copies `src` into `self` without allocating (reuses storage).
    ///
    /// The allocation-free counterpart of `*self = src.clone()` for hot
    /// paths that recycle a same-shaped destination buffer.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, src: &Mat) {
        assert_eq!(
            (self.rows, self.cols),
            (src.rows, src.cols),
            "copy_from shape mismatch"
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Adds `row` to every row of `self` (broadcast add).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols`.
    pub fn add_row_broadcast(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "broadcast length mismatch");
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &b) in dst.iter_mut().zip(row.iter()) {
                *d += b;
            }
        }
    }

    /// Sums each column, returning a length-`cols` vector.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Returns true if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Returns true if any entry is exactly zero (either sign). Used to
    /// decide whether a GEMM's zero-skip path can fire at all.
    pub fn has_zero(&self) -> bool {
        // lint:allow(float-eq): exact-zero test mirrors the kernel's skip condition
        self.data.iter().any(|&x| x == 0.0)
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// `out += alpha * a * b` (accumulating GEMM).
///
/// Cache-blocked over the inner dimension `k`: a block of `b` rows sized
/// to L1 stays resident while every row of `a` sweeps past it. Blocks are
/// visited in ascending `k` order and the inner loop is ascending too, so
/// for each output element the contributions are summed in exactly the
/// naive i-k-j order — the blocked kernel is bit-identical to the naive
/// one, which is what the deterministic trainers rely on.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn gemm_acc(out: &mut Mat, a: &Mat, b: &Mat, alpha: f64) {
    assert_eq!(a.cols, b.rows, "gemm inner dimension mismatch");
    assert_eq!(out.rows, a.rows, "gemm output rows mismatch");
    assert_eq!(out.cols, b.cols, "gemm output cols mismatch");
    let _prof = profile::span("gemm");
    account_gemm(a.rows, b.cols, a.cols);
    kernel::active::gemm_acc(
        &mut out.data,
        a.rows,
        b.cols,
        a.cols,
        &a.data,
        &b.data,
        alpha,
        skip_ok(a, b),
    );
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics on length mismatch.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// In-place `a += alpha * b` for slices.
///
/// # Panics
///
/// Panics on length mismatch.
#[inline]
pub fn axpy_slice(a: &mut [f64], alpha: f64, b: &[f64]) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        *x += alpha * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn zeros_and_shape() {
        let m = Mat::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_indexes_row_major() {
        let m = Mat::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(0, 2)], 2.0);
        assert_eq!(m[(1, 0)], 10.0);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn matmul_small() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Mat::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let i = Mat::identity(4);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Mat::from_fn(3, 2, |r, c| (r + c * 2) as f64 * 0.5);
        let b = Mat::from_fn(3, 4, |r, c| (r as f64 - c as f64) * 0.25);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast.shape(), slow.shape());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Mat::from_fn(3, 5, |r, c| (r * c) as f64 * 0.1 - 0.3);
        let b = Mat::from_fn(2, 5, |r, c| (r + c) as f64 * 0.2);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_fn(3, 7, |r, c| (r * 31 + c * 7) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Mat::filled(2, 2, 1.0);
        let b = Mat::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert!(a.as_slice().iter().all(|&x| approx(x, 2.0)));
        a.scale(2.0);
        assert!(a.as_slice().iter().all(|&x| approx(x, 4.0)));
    }

    #[test]
    fn broadcast_add_and_col_sums() {
        let mut a = Mat::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn row_views() {
        let mut m = Mat::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        m.set_row(0, &[9.0, 9.0, 9.0]);
        assert_eq!(m.row(0), &[9.0, 9.0, 9.0]);
        assert_eq!(m.col(0), vec![9.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = Mat::zeros(1, 2);
        assert!(!m.has_non_finite());
        m[(0, 1)] = f64::NAN;
        assert!(m.has_non_finite());
    }

    #[test]
    fn dot_and_axpy_slice() {
        assert!(approx(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0));
        let mut a = [1.0, 1.0];
        axpy_slice(&mut a, 2.0, &[1.0, 2.0]);
        assert_eq!(a, [3.0, 5.0]);
    }

    #[test]
    fn gemm_acc_accumulates() {
        let a = Mat::identity(2);
        let b = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut out = Mat::filled(2, 2, 1.0);
        gemm_acc(&mut out, &a, &b, 2.0);
        assert_eq!(out.as_slice(), &[3.0, 5.0, 7.0, 9.0]);
    }

    /// Reference naive i-k-j GEMM with no skips of any kind: the exact
    /// accumulation order the blocked kernels must reproduce bit-for-bit
    /// (including through their zero-skip fast paths).
    fn gemm_naive(out: &mut Mat, a: &Mat, b: &Mat, alpha: f64) {
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let f = alpha * a[(i, k)];
                for j in 0..b.cols() {
                    out[(i, j)] += f * b[(k, j)];
                }
            }
        }
    }

    fn pseudo_random_mat(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed;
        Mat::from_fn(rows, cols, |_, _| {
            // splitmix64 step; maps to roughly [-1, 1).
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
        })
    }

    fn assert_bits_eq(a: &Mat, b: &Mat) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn blocked_gemm_bit_identical_to_naive() {
        // Dimensions larger than one cache block in every direction.
        let a = pseudo_random_mat(37, 300, 1);
        let b = pseudo_random_mat(300, 95, 2);
        let mut blocked = Mat::zeros(37, 95);
        let mut naive = Mat::zeros(37, 95);
        gemm_acc(&mut blocked, &a, &b, 0.7);
        gemm_naive(&mut naive, &a, &b, 0.7);
        assert_bits_eq(&blocked, &naive);
    }

    #[test]
    fn blocked_matmul_t_bit_identical_to_per_row_dots() {
        let a = pseudo_random_mat(41, 130, 3);
        let b = pseudo_random_mat(270, 130, 4);
        let blocked = a.matmul_t(&b);
        let mut naive = Mat::zeros(41, 270);
        for r in 0..41 {
            for j in 0..270 {
                naive[(r, j)] = dot(a.row(r), b.row(j));
            }
        }
        assert_bits_eq(&blocked, &naive);
    }

    #[test]
    fn par_kernels_bit_identical_across_thread_counts() {
        let a = pseudo_random_mat(33, 64, 5);
        let b = pseudo_random_mat(64, 29, 6);
        let bt = pseudo_random_mat(29, 64, 7);
        let serial_mm = a.matmul(&b);
        let serial_mmt = a.matmul_t(&bt);
        for threads in [1, 2, 4, 5] {
            let pool = WorkerPool::new(threads);
            assert_bits_eq(&a.par_matmul(&b, &pool), &serial_mm);
            assert_bits_eq(&a.par_matmul_t(&bt, &pool), &serial_mmt);
        }
    }

    /// Plants exact zeros into a matrix so the sparsity fast paths engage.
    fn with_zero_rows(mut m: Mat, every: usize) -> Mat {
        for r in (0..m.rows()).step_by(every) {
            m.row_mut(r).fill(0.0);
        }
        m
    }

    #[test]
    fn zero_skip_matches_naive_reference_bit_for_bit() {
        // The skip path must be exact, not just close: compare against the
        // skipless naive loop on data with whole zero rows planted.
        let a = with_zero_rows(pseudo_random_mat(19, 48, 8), 3);
        let b = pseudo_random_mat(48, 23, 9);
        let mut blocked = Mat::zeros(19, 23);
        let mut naive = Mat::zeros(19, 23);
        gemm_acc(&mut blocked, &a, &b, 1.0);
        gemm_naive(&mut naive, &a, &b, 1.0);
        assert_bits_eq(&blocked, &naive);

        // t_matmul against its explicit-transpose equivalent.
        let at = with_zero_rows(pseudo_random_mat(48, 19, 10), 4);
        let fast = at.t_matmul(&b);
        let mut slow = Mat::zeros(19, 23);
        gemm_naive(&mut slow, &at.transpose(), &b, 1.0);
        assert_bits_eq(&fast, &slow);
    }

    /// Regression for the NaN-masking sparsity-skip bug: a NaN planted in
    /// `other` must reach the output even through an exactly-zero row of
    /// `self` (`0.0 * NaN = NaN`). The pre-fix kernels skipped zero
    /// coefficients unconditionally, so the NaN silently vanished and a
    /// poisoned activation could sail past `debug_assert_finite!` and the
    /// TrainGuard divergence checks.
    #[test]
    fn nan_in_other_propagates_through_zero_rows() {
        let mut a = pseudo_random_mat(4, 6, 11);
        a.row_mut(2).fill(0.0);
        let mut b = pseudo_random_mat(6, 5, 12);
        b[(3, 1)] = f64::NAN;

        // matmul / gemm_acc: row 2 of the output is 0-weights · b, which
        // includes 0.0 * NaN.
        let out = a.matmul(&b);
        assert!(out[(2, 1)].is_nan(), "matmul dropped 0*NaN");

        // t_matmul: column 2 of a^T is the zero row.
        let mut at = pseudo_random_mat(6, 4, 13);
        for r in 0..6 {
            at[(r, 2)] = 0.0;
        }
        let out = at.t_matmul(&b);
        assert!(out[(2, 1)].is_nan(), "t_matmul dropped 0*NaN");

        // par_matmul at several thread counts.
        for threads in [1, 3] {
            let pool = WorkerPool::new(threads);
            let out = a.par_matmul(&b, &pool);
            assert!(out[(2, 1)].is_nan(), "par_matmul dropped 0*NaN");
        }
    }

    #[test]
    fn into_variants_match_allocating_kernels() {
        let a = pseudo_random_mat(9, 31, 14);
        let b = pseudo_random_mat(17, 31, 15);
        let mut out = Mat::filled(9, 17, 7.5); // stale garbage to overwrite
        a.matmul_t_into(&b, &mut out);
        assert_bits_eq(&out, &a.matmul_t(&b));

        let c = pseudo_random_mat(9, 13, 16);
        let mut acc = Mat::zeros(31, 13);
        let at = pseudo_random_mat(9, 31, 17);
        at.t_matmul_acc(&c, &mut acc);
        assert_bits_eq(&acc, &at.t_matmul(&c));
        // Accumulating form really accumulates (approximately 2x — the
        // second pass adds term-by-term, so exact bit equality with a
        // single post-hoc add is not expected).
        let once = at.t_matmul(&c);
        at.t_matmul_acc(&c, &mut acc);
        for (x, y) in acc.as_slice().iter().zip(once.as_slice()) {
            assert!((x - 2.0 * y).abs() <= 1e-12 * y.abs().max(1.0));
        }
    }
}
