//! Cholesky factorization and SPD linear solves.
//!
//! Used by the Poisson-regression IRLS fitter in the `glm` crate, where each
//! iteration solves `(X^T W X + lambda I) beta = X^T W z` — a symmetric
//! positive-definite system.

use crate::matrix::Mat;
use std::fmt;

/// Error returned when a matrix is not symmetric positive-definite (to
/// working precision), or is not square.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CholeskyError {
    /// Matrix is not square.
    NotSquare {
        /// Observed row count.
        rows: usize,
        /// Observed column count.
        cols: usize,
    },
    /// A non-positive pivot was encountered at the given index; the matrix is
    /// not positive-definite to working precision.
    NotPositiveDefinite {
        /// Pivot index at which factorization failed.
        pivot: usize,
    },
    /// The right-hand side passed to [`Cholesky::solve`] does not match the
    /// matrix dimension.
    RhsLength {
        /// Observed right-hand-side length.
        got: usize,
        /// Matrix dimension.
        expected: usize,
    },
}

impl fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CholeskyError::NotSquare { rows, cols } => {
                write!(f, "cholesky: matrix is {rows}x{cols}, not square")
            }
            CholeskyError::NotPositiveDefinite { pivot } => {
                write!(f, "cholesky: non-positive pivot at index {pivot}")
            }
            CholeskyError::RhsLength { got, expected } => {
                write!(f, "cholesky: rhs has length {got}, matrix is {expected}x{expected}")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Mat,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the caller is responsible for
    /// `a` being (numerically) symmetric.
    pub fn factor(a: &Mat) -> Result<Self, CholeskyError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(CholeskyError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let mut l = Mat::zeros(n, n);
        for j in 0..n {
            // Diagonal entry.
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(CholeskyError::NotPositiveDefinite { pivot: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            // Below-diagonal entries of column j.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Mat {
        &self.l
    }

    /// Solves `A x = b` given the factorization of `A`.
    ///
    /// # Errors
    ///
    /// Returns [`CholeskyError::RhsLength`] if `b.len()` does not match the
    /// matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, CholeskyError> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(CholeskyError::RhsLength {
                got: b.len(),
                expected: n,
            });
        }
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Back substitution: L^T x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A` (twice the log-determinant of `L`).
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Convenience: solves `A x = b` for SPD `A` in one call.
pub fn solve_spd(a: &Mat, b: &[f64]) -> Result<Vec<f64>, CholeskyError> {
    Cholesky::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_from_seed(n: usize, seed: u64) -> Mat {
        // Build B with deterministic pseudo-random entries, return B B^T + n I.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let b = Mat::from_fn(n, n, |_, _| next());
        let mut a = b.matmul_t(&b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn factor_identity() {
        let chol = Cholesky::factor(&Mat::identity(4)).unwrap();
        assert_eq!(chol.l(), &Mat::identity(4));
        assert!((chol.log_det()).abs() < 1e-12);
    }

    #[test]
    fn solve_recovers_known_solution() {
        for seed in 1..6u64 {
            let n = 6;
            let a = spd_from_seed(n, seed);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 2.5).collect();
            let b: Vec<f64> = (0..n)
                .map(|i| (0..n).map(|j| a[(i, j)] * x_true[j]).sum())
                .collect();
            let x = solve_spd(&a, &b).unwrap();
            for (got, want) in x.iter().zip(&x_true) {
                assert!((got - want).abs() < 1e-8, "seed {seed}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd_from_seed(5, 42);
        let chol = Cholesky::factor(&a).unwrap();
        let rec = chol.l().matmul_t(chol.l());
        for i in 0..5 {
            for j in 0..5 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rejects_non_square() {
        let err = Cholesky::factor(&Mat::zeros(2, 3)).unwrap_err();
        assert_eq!(err, CholeskyError::NotSquare { rows: 2, cols: 3 });
    }

    #[test]
    fn rejects_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        let err = Cholesky::factor(&a).unwrap_err();
        assert!(matches!(err, CholeskyError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn rejects_rhs_length_mismatch() {
        let chol = Cholesky::factor(&Mat::identity(3)).unwrap();
        let err = chol.solve(&[1.0, 2.0]).unwrap_err();
        assert_eq!(err, CholeskyError::RhsLength { got: 2, expected: 3 });
    }

    #[test]
    fn log_det_matches_known() {
        // diag(2, 3, 4): log det = ln(24).
        let a = Mat::from_fn(3, 3, |r, c| if r == c { (r + 2) as f64 } else { 0.0 });
        let chol = Cholesky::factor(&a).unwrap();
        assert!((chol.log_det() - 24.0f64.ln()).abs() < 1e-12);
    }
}
