//! Numerically-stable scalar and slice helpers shared by the model crates.

/// Logistic sigmoid, stable for large-magnitude inputs.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically-stable `ln(1 + exp(x))` (softplus).
#[inline]
pub fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Stable log-sum-exp over a slice.
///
/// Returns negative infinity for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

/// In-place softmax over a slice (stable).
///
/// Leaves an empty slice untouched.
pub fn softmax_inplace(xs: &mut [f64]) {
    if xs.is_empty() {
        return;
    }
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - m).exp();
        sum += *x;
    }
    for x in xs.iter_mut() {
        *x /= sum;
    }
}

/// Log-softmax of one element: `xs[i] - log_sum_exp(xs)`.
///
/// # Panics
///
/// Panics if `i` is out of bounds.
pub fn log_softmax_at(xs: &[f64], i: usize) -> f64 {
    xs[i] - log_sum_exp(xs)
}

/// Binary-cross-entropy with logits for a single output.
///
/// Computes `-[y * ln(sigmoid(z)) + (1-y) * ln(1 - sigmoid(z))]` in a stable
/// form: `max(z, 0) - z*y + ln(1 + exp(-|z|))`.
#[inline]
pub fn bce_with_logits(z: f64, y: f64) -> f64 {
    z.max(0.0) - z * y + (-z.abs()).exp().ln_1p()
}

/// Hyperbolic tangent (thin wrapper so call sites read uniformly).
#[inline]
pub fn tanh(x: f64) -> f64 {
    x.tanh()
}

/// Derivative of tanh given the *output* value `t = tanh(x)`.
#[inline]
pub fn dtanh_from_output(t: f64) -> f64 {
    1.0 - t * t
}

/// Derivative of sigmoid given the *output* value `s = sigmoid(x)`.
#[inline]
pub fn dsigmoid_from_output(s: f64) -> f64 {
    s * (1.0 - s)
}

/// Clamps a probability into the open interval `(eps, 1-eps)` to avoid
/// infinities when taking logs.
#[inline]
pub fn clamp_prob(p: f64, eps: f64) -> f64 {
    p.clamp(eps, 1.0 - eps)
}

/// Returns `true` when every element of `xs` is finite (no NaN, no ±inf).
#[inline]
pub fn all_finite(xs: &[f64]) -> bool {
    xs.iter().all(|x| x.is_finite())
}

/// Index and value of the first non-finite element of `xs`, if any.
pub fn first_non_finite(xs: &[f64]) -> Option<(usize, f64)> {
    xs.iter()
        .enumerate()
        .find(|(_, v)| !v.is_finite())
        .map(|(i, &v)| (i, v))
}

/// Debug-build assertion that every element of a slice is finite.
///
/// `debug_assert_finite!(slice, "context")` panics in debug builds when the
/// slice contains a NaN or infinity, naming the first offending index and
/// value. Release builds compile the check away entirely, so it can sit on
/// hot paths (LSTM forward/backward, optimizer steps) at zero cost.
#[macro_export]
macro_rules! debug_assert_finite {
    ($xs:expr, $what:expr) => {
        if cfg!(debug_assertions) {
            if let Some((i, v)) = $crate::numeric::first_non_finite($xs) {
                // lint:allow(no-panic): debug-only numeric tripwire; release builds compile this out
                panic!("non-finite value {v} at index {i} in {}", $what);
            }
        }
    };
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
///
/// Accurate to ~1e-13 for positive arguments; uses the reflection formula
/// for `x < 0.5`.
///
/// # Panics
///
/// Panics for non-positive integer arguments (poles of the gamma function).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        assert!(
            x != x.floor() || x > 0.0,
            "ln_gamma pole at non-positive integer {x}"
        );
        // Reflection: Γ(x) Γ(1-x) = π / sin(πx).
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().abs().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_extremes() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!(sigmoid(-1000.0) >= 0.0);
    }

    #[test]
    fn softplus_matches_naive_in_safe_range() {
        for &x in &[-5.0, -1.0, 0.0, 1.0, 5.0] {
            let naive = (1.0f64 + f64::exp(x)).ln();
            assert!((softplus(x) - naive).abs() < 1e-12);
        }
        assert_eq!(softplus(100.0), 100.0);
        assert!(softplus(-100.0) > 0.0);
    }

    #[test]
    fn log_sum_exp_stable() {
        let v = [1000.0, 1000.0];
        assert!((log_sum_exp(&v) - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut v = [1.0, 2.0, 3.0];
        softmax_inplace(&mut v);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_invariant_to_shift() {
        let mut a = [1.0, 2.0, 3.0];
        let mut b = [101.0, 102.0, 103.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn bce_matches_naive() {
        for &z in &[-3.0, -0.5, 0.0, 0.5, 3.0] {
            for &y in &[0.0, 1.0] {
                let p = sigmoid(z);
                let naive = -(y * p.ln() + (1.0 - y) * (1.0 - p).ln());
                assert!((bce_with_logits(z, y) - naive).abs() < 1e-10, "z={z} y={y}");
            }
        }
    }

    #[test]
    fn bce_stable_at_extremes() {
        assert!(bce_with_logits(1000.0, 1.0).abs() < 1e-12);
        assert!((bce_with_logits(1000.0, 0.0) - 1000.0).abs() < 1e-9);
        assert!(bce_with_logits(-1000.0, 0.0).abs() < 1e-12);
    }

    #[test]
    fn activation_derivatives() {
        let t = tanh(0.7);
        assert!((dtanh_from_output(t) - (1.0 - t * t)).abs() < 1e-15);
        let s = sigmoid(0.3);
        assert!((dsigmoid_from_output(s) - s * (1.0 - s)).abs() < 1e-15);
    }

    #[test]
    fn clamp_prob_bounds() {
        assert_eq!(clamp_prob(-0.1, 1e-9), 1e-9);
        assert_eq!(clamp_prob(2.0, 1e-9), 1.0 - 1e-9);
        assert_eq!(clamp_prob(0.5, 1e-9), 0.5);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)! for integer n.
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-10,
                "n = {n}"
            );
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π).
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
        // Γ(3/2) = sqrt(π)/2.
        let expect = 0.5 * std::f64::consts::PI.ln() - 2.0f64.ln();
        assert!((ln_gamma(1.5) - expect).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // ln Γ(x+1) = ln x + ln Γ(x).
        for &x in &[0.7, 1.3, 2.9, 10.4, 55.5] {
            assert!((ln_gamma(x + 1.0) - x.ln() - ln_gamma(x)).abs() < 1e-9, "x = {x}");
        }
    }

    #[test]
    fn all_finite_and_first_non_finite() {
        assert!(all_finite(&[0.0, -1.5, 1e300]));
        assert!(all_finite(&[]));
        assert!(!all_finite(&[0.0, f64::NAN]));
        assert_eq!(first_non_finite(&[1.0, 2.0]), None);
        let got = first_non_finite(&[1.0, f64::INFINITY, f64::NAN]);
        assert_eq!(got, Some((1, f64::INFINITY)));
        let (i, v) = first_non_finite(&[f64::NAN]).expect("nan found");
        assert_eq!(i, 0);
        assert!(v.is_nan());
    }

    #[test]
    fn debug_assert_finite_passes_on_finite() {
        crate::debug_assert_finite!(&[1.0, 2.0, 3.0], "test slice");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite value")]
    fn debug_assert_finite_panics_on_nan() {
        crate::debug_assert_finite!(&[0.0, f64::NAN], "test slice");
    }

    #[test]
    fn log_softmax_at_matches_softmax() {
        let xs = [0.2, -1.0, 3.0];
        let mut sm = xs;
        softmax_inplace(&mut sm);
        for i in 0..3 {
            assert!((log_softmax_at(&xs, i) - sm[i].ln()).abs() < 1e-12);
        }
    }
}
