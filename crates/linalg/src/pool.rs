//! Deterministic fixed-size worker pool.
//!
//! The workspace's parallelism contract is *bit-for-bit determinism*: the
//! numeric result of every parallel region must be independent of how many
//! threads executed it. The pool therefore never lets scheduling order leak
//! into results — workers pull item indices from a shared atomic cursor
//! (dynamic load balancing), but every result is tagged with its item index
//! and the final vector is reassembled in item order. Reduction order is the
//! *caller's* job (see `nn::accum::tree_reduce`); the pool only guarantees
//! that `map` returns exactly `f(0, &items[0]), f(1, &items[1]), …` in order.
//!
//! Built on `std::thread::scope` only — no unsafe.
//!
//! When the hierarchical profiler is active on the submitting thread
//! (`obsv::profile`), each worker joins the trace on its own lane: the
//! worker's item spans are parented under the span that submitted the
//! `map`, and per-worker utilization (busy vs idle time inside the map
//! region, items pulled) is accumulated as counters plus a `pool.wN.util`
//! gauge. With profiling off all of this reduces to a few thread-local
//! flag reads.

use obsv::profile;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A cooperative cancellation flag shared between a request owner and the
/// workers computing on its behalf.
///
/// Cancellation never alters numeric results: checkpoints that observe the
/// flag abort with an error, they never produce a partial answer, so the
/// determinism contract ("bit-for-bit identical output for any thread
/// count") is preserved — a cancelled computation has *no* output.
///
/// Lives in this file because the pool is the workspace's only sanctioned
/// home for atomics on the parallel path (`shared-mut-numeric`); everything
/// else holds a clone and calls the methods.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A fixed-size worker pool that maps a function over a slice and returns
/// the results in item order, regardless of thread count or scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool of `threads` workers. Zero is clamped to one.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Number of worker threads this pool uses.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f(index, &items[index])` to every item and returns the
    /// results **in item order**.
    ///
    /// With one thread the items are processed inline on the caller's
    /// thread (no spawn overhead). With more, scoped workers pull indices
    /// from a shared cursor; the result order is still index order, so the
    /// output is bit-for-bit identical for any thread count.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `f` on the calling thread.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let _map_span = profile::span("pool-map");
        if self.threads == 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        if let Some(p) = profile::current() {
            p.add_counter("pool.maps", 1);
            p.add_counter("pool.items", items.len() as u64);
        }
        let handoff = profile::handoff();
        let cursor = AtomicUsize::new(0);
        let workers = self.threads.min(items.len());
        let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let cursor = &cursor;
            let f = &f;
            let handoff = handoff.as_ref();
            let mut handles = Vec::with_capacity(workers);
            for wi in 0..workers {
                // lint:allow(hot-loop-alloc): one spawn handle per worker — O(threads), not O(items)
                handles.push(scope.spawn(move || {
                    // lint:allow(hot-loop-alloc): lane label is formatted once per worker at startup
                    let _lane = handoff.map(|h| h.enter(&format!("worker-{wi}")));
                    let t0 = profile::now_us();
                    let mut busy_us = 0u64;
                    let mut pulled = 0u64;
                    // lint:allow(hot-loop-alloc): per-worker result buffer, allocated once per worker
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let item_span = profile::span("pool-item");
                        let s0 = profile::now_us();
                        // lint:allow(hot-loop-alloc): collecting results is map's output; amortized O(1) growth
                        local.push((i, f(i, &items[i])));
                        drop(item_span);
                        if let (Some(a), Some(b)) = (s0, profile::now_us()) {
                            busy_us += b.saturating_sub(a);
                        }
                        pulled += 1;
                    }
                    if let (Some(h), Some(t0)) = (handoff, t0) {
                        if let Some(t1) = profile::now_us() {
                            let total = t1.saturating_sub(t0).max(1);
                            let idle = total.saturating_sub(busy_us);
                            let p = h.profiler();
                            // lint:allow(hot-loop-alloc): once-per-worker telemetry epilogue, O(threads)
                            p.add_counter(&format!("pool.w{wi}.items"), pulled);
                            // lint:allow(hot-loop-alloc): once-per-worker telemetry epilogue, O(threads)
                            p.add_counter(&format!("pool.w{wi}.busy_us"), busy_us);
                            // lint:allow(hot-loop-alloc): once-per-worker telemetry epilogue, O(threads)
                            p.add_counter(&format!("pool.w{wi}.idle_us"), idle);
                            p.set_gauge(
                                // lint:allow(hot-loop-alloc): once-per-worker telemetry epilogue, O(threads)
                                &format!("pool.w{wi}.util"),
                                busy_us as f64 / total as f64,
                            );
                        }
                    }
                    local
                }));
            }
            for handle in handles {
                match handle.join() {
                    Ok(local) => tagged.extend(local),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        // Reassemble in item order: scheduling decided who computed what,
        // but never the order of the output.
        tagged.sort_unstable_by_key(|(i, _)| *i);
        debug_assert_eq!(tagged.len(), items.len());
        tagged.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled() && !c.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled() && c.is_cancelled());
        c.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let out = pool.map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_identical_across_thread_counts() {
        let items: Vec<f64> = (0..64).map(|i| i as f64 * 0.37 - 3.0).collect();
        let single = WorkerPool::new(1).map(&items, |_, &x| x.sin() * x.exp());
        for threads in [2, 3, 4, 8] {
            let multi = WorkerPool::new(threads).map(&items, |_, &x| x.sin() * x.exp());
            // Bit-for-bit: same inputs, same ops, order-independent map.
            assert!(single
                .iter()
                .zip(multi.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let pool = WorkerPool::new(4);
        let empty: Vec<i32> = Vec::new();
        assert!(pool.map(&empty, |_, &x| x).is_empty());
        assert_eq!(pool.map(&[42], |_, &x| x + 1), vec![43]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let pool = WorkerPool::new(16);
        let out = pool.map(&[1, 2, 3], |_, &x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn profiled_map_records_worker_lanes_and_utilization() {
        let p = obsv::Profiler::new();
        {
            let _act = p.activate("main");
            let _submit = profile::span("submit");
            let pool = WorkerPool::new(3);
            let items: Vec<u64> = (0..32).collect();
            let out = pool.map(&items, |_, &x| x * 2);
            assert_eq!(out[31], 62);
        }
        let spans = p.spans();
        let submit = spans.iter().find(|s| s.name == "submit").unwrap();
        let map_span = spans.iter().find(|s| s.name == "pool-map").unwrap();
        assert_eq!(map_span.parent, Some(submit.id));
        let items_spans: Vec<_> = spans.iter().filter(|s| s.name == "pool-item").collect();
        assert_eq!(items_spans.len(), 32);
        assert!(items_spans.iter().all(|s| s.parent == Some(map_span.id)));
        assert!(items_spans.iter().all(|s| s.tid != submit.tid));

        let rec = obsv::MemoryRecorder::new();
        p.flush_events(&rec);
        let report = obsv::RunReport::from_events(&rec.events());
        assert_eq!(report.counters["pool.maps"], 1);
        assert_eq!(report.counters["pool.items"], 32);
        let pulled: u64 = report
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("pool.w") && k.ends_with(".items"))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(pulled, 32);
        for (name, util) in report.gauges.iter().filter(|(k, _)| k.ends_with(".util")) {
            assert!((0.0..=1.0).contains(util), "{name} = {util}");
        }
    }

    #[test]
    fn unprofiled_map_records_nothing() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..16).collect();
        let out = pool.map(&items, |_, &x| x + 1);
        assert_eq!(out.len(), 16);
        // No profiler was active, so there is nothing to flush anywhere —
        // this test mostly asserts the fast path does not panic or leak
        // thread-local state.
        assert!(profile::current().is_none());
    }
}
