//! Deterministic fixed-size worker pool.
//!
//! The workspace's parallelism contract is *bit-for-bit determinism*: the
//! numeric result of every parallel region must be independent of how many
//! threads executed it. The pool therefore never lets scheduling order leak
//! into results — workers pull item indices from a shared atomic cursor
//! (dynamic load balancing), but every result is tagged with its item index
//! and the final vector is reassembled in item order. Reduction order is the
//! *caller's* job (see `nn::accum::tree_reduce`); the pool only guarantees
//! that `map` returns exactly `f(0, &items[0]), f(1, &items[1]), …` in order.
//!
//! Built on `std::thread::scope` only — no dependencies, no unsafe.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-size worker pool that maps a function over a slice and returns
/// the results in item order, regardless of thread count or scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool of `threads` workers. Zero is clamped to one.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Number of worker threads this pool uses.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f(index, &items[index])` to every item and returns the
    /// results **in item order**.
    ///
    /// With one thread the items are processed inline on the caller's
    /// thread (no spawn overhead). With more, scoped workers pull indices
    /// from a shared cursor; the result order is still index order, so the
    /// output is bit-for-bit identical for any thread count.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `f` on the calling thread.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let workers = self.threads.min(items.len());
        let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                handles.push(scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                }));
            }
            for handle in handles {
                match handle.join() {
                    Ok(local) => tagged.extend(local),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        // Reassemble in item order: scheduling decided who computed what,
        // but never the order of the output.
        tagged.sort_unstable_by_key(|(i, _)| *i);
        debug_assert_eq!(tagged.len(), items.len());
        tagged.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_clamped_to_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let out = pool.map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_identical_across_thread_counts() {
        let items: Vec<f64> = (0..64).map(|i| i as f64 * 0.37 - 3.0).collect();
        let single = WorkerPool::new(1).map(&items, |_, &x| x.sin() * x.exp());
        for threads in [2, 3, 4, 8] {
            let multi = WorkerPool::new(threads).map(&items, |_, &x| x.sin() * x.exp());
            // Bit-for-bit: same inputs, same ops, order-independent map.
            assert!(single
                .iter()
                .zip(multi.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let pool = WorkerPool::new(4);
        let empty: Vec<i32> = Vec::new();
        assert!(pool.map(&empty, |_, &x| x).is_empty());
        assert_eq!(pool.map(&[42], |_, &x| x + 1), vec![43]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let pool = WorkerPool::new(16);
        let out = pool.map(&[1, 2, 3], |_, &x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }
}
