//! Slice-level GEMM-family inner kernels, in two bit-identical flavors.
//!
//! [`scalar`] is the textbook implementation and the bit-exactness oracle;
//! [`lanes`] unrolls the same loops into wide independent accumulator
//! lanes so the autovectorizer can keep several f64 vector operations in
//! flight. The crate's `simd` feature (on by default) selects which one
//! [`active`] re-exports; [`crate::Mat`]'s public kernels call through
//! `active`, so the whole workspace switches with the feature.
//!
//! **The determinism contract both flavors obey:** for every output
//! element, the `k` (inner-dimension) contributions are added in ascending
//! `k` order, one rounding per `+=`, exactly as the naive triple loop
//! would. The lane kernels only unroll *across* independent output
//! elements (columns of the output) or fuse consecutive `k` steps as
//! *sequential* adds — they never reassociate a single element's sum. That
//! is why `simd` on/off, blocked/naive, and fused/unfused paths are all
//! bit-for-bit interchangeable (asserted in this module's tests).
//!
//! **Zero-skip semantics:** the axpy-style kernels take a `skip_zeros`
//! flag allowing them to skip `k` steps whose `a` coefficient is exactly
//! `0.0` — a large win for the one-hot token encodings the LSTMs consume.
//! Skipping is only exact when the streamed operand `b` is finite
//! (`0.0 * NaN` is `NaN`, and dropping it would hide a poisoned
//! activation from the NaN tripwires), so callers must gate the flag on a
//! `has_non_finite` scan of `b`. See `Mat::matmul` for the gating.

/// Target working-set size for cache blocking, in `f64` entries (32 KiB of
/// L1 data cache). Block heights are sized so one block of the streamed
/// operand stays resident while the other operand sweeps past it.
pub(crate) const L1_F64S: usize = 4096;

/// Block height for an operand with `cols` columns: as many rows as fit
/// the L1 budget, clamped to a sane range.
#[inline]
pub(crate) fn block_rows(cols: usize) -> usize {
    (L1_F64S / cols.max(1)).clamp(8, 256)
}

/// `k` steps fused per pass in the axpy-style lane kernels. Each fused
/// step is a *sequential* add into the output row, so fusing changes
/// instruction scheduling (one output load/store per `KU` steps instead
/// of per step) but not accumulation order.
const KU: usize = 4;

/// Independent output lanes in the dot-style lane kernel: 8 parallel
/// accumulator chains hide the floating-point add latency that serializes
/// a single dot product.
const NL: usize = 8;

macro_rules! check_gemm_shapes {
    ($out:ident, $a:ident, $b:ident, $m:ident, $n:ident, $k:ident) => {
        debug_assert_eq!($out.len(), $m * $n, "output buffer shape");
        debug_assert_eq!($a.len(), $m * $k, "a buffer shape");
        debug_assert_eq!($b.len(), $k * $n, "b buffer shape");
    };
}

/// The scalar oracle kernels: cache-blocked but otherwise textbook loops.
pub mod scalar {
    use super::block_rows;

    /// `out[m x n] += alpha * a[m x k] * b[k x n]`, all row-major.
    ///
    /// Cache-blocked over `k`; ascending-`k` accumulation per element.
    /// With `skip_zeros`, `k` steps whose coefficient is exactly zero are
    /// skipped (caller guarantees `b` is finite).
    pub fn gemm_acc(
        out: &mut [f64],
        m: usize,
        n: usize,
        kdim: usize,
        a: &[f64],
        b: &[f64],
        alpha: f64,
        skip_zeros: bool,
    ) {
        check_gemm_shapes!(out, a, b, m, n, kdim);
        let kb = block_rows(n);
        for k0 in (0..kdim).step_by(kb) {
            let k1 = (k0 + kb).min(kdim);
            for i in 0..m {
                let a_row = &a[i * kdim..(i + 1) * kdim];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (k, &aik) in a_row[k0..k1].iter().enumerate() {
                    let f = alpha * aik;
                    // lint:allow(float-eq): exact-zero sparsity skip, gated on a finite b
                    if skip_zeros && f == 0.0 {
                        continue;
                    }
                    let b_row = &b[(k0 + k) * n..(k0 + k + 1) * n];
                    for (o, &bkj) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += f * bkj;
                    }
                }
            }
        }
    }

    /// `out[m x n] = a[m x k] * b[n x k]^T`: every output element is one
    /// left-to-right dot product. Cache-blocked over the rows of `b`.
    pub fn matmul_t(out: &mut [f64], m: usize, n: usize, kdim: usize, a: &[f64], b: &[f64]) {
        debug_assert_eq!(out.len(), m * n, "output buffer shape");
        debug_assert_eq!(a.len(), m * kdim, "a buffer shape");
        debug_assert_eq!(b.len(), n * kdim, "b buffer shape");
        let jb = block_rows(kdim);
        for j0 in (0..n).step_by(jb) {
            let j1 = (j0 + jb).min(n);
            for i in 0..m {
                let a_row = &a[i * kdim..(i + 1) * kdim];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (j, o) in out_row[j0..j1].iter_mut().enumerate() {
                    let b_row = &b[(j0 + j) * kdim..(j0 + j + 1) * kdim];
                    *o = crate::matrix::dot(a_row, b_row);
                }
            }
        }
    }

    /// `out[m x n] += a[k x m]^T * b[k x n]`, all row-major (`a` is stored
    /// untransposed; this is the gradient-accumulation product
    /// `x^T · dz`). `k` is iterated outermost, ascending per element.
    pub fn t_matmul_acc(
        out: &mut [f64],
        m: usize,
        n: usize,
        kdim: usize,
        a: &[f64],
        b: &[f64],
        skip_zeros: bool,
    ) {
        debug_assert_eq!(out.len(), m * n, "output buffer shape");
        debug_assert_eq!(a.len(), kdim * m, "a buffer shape");
        debug_assert_eq!(b.len(), kdim * n, "b buffer shape");
        for k in 0..kdim {
            let a_row = &a[k * m..(k + 1) * m];
            let b_row = &b[k * n..(k + 1) * n];
            for (i, &aki) in a_row.iter().enumerate() {
                // lint:allow(float-eq): exact-zero sparsity skip, gated on a finite b
                if skip_zeros && aki == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &bkj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += aki * bkj;
                }
            }
        }
    }
}

/// The lane-unrolled kernels: same loops as [`scalar`], restructured so
/// the autovectorizer sees wide independent work. Bit-identical to
/// [`scalar`] by construction (and by test).
pub mod lanes {
    use super::{block_rows, KU, NL};

    /// One fused pass: `out[j] += f0*b0[j]; out[j] += f1*b1[j]; ...` as
    /// sequential adds — ascending-`k` order per element, one output
    /// load/store per `KU` steps.
    #[inline]
    fn axpy4(out: &mut [f64], f: [f64; KU], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) {
        let n = out.len();
        let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
        for j in 0..n {
            let mut o = out[j];
            o += f[0] * b0[j];
            o += f[1] * b1[j];
            o += f[2] * b2[j];
            o += f[3] * b3[j];
            out[j] = o;
        }
    }

    /// Single-step axpy, used for remainders and sparse fallbacks.
    #[inline]
    fn axpy1(out: &mut [f64], f: f64, b: &[f64]) {
        let n = out.len();
        let b = &b[..n];
        for j in 0..n {
            out[j] += f * b[j];
        }
    }

    /// Two output rows per pass: the four `b` rows are loaded once per
    /// `j` and feed both rows' fused updates, halving streamed-operand
    /// traffic per flop. Each row's element still receives its `KU`
    /// contributions as sequential ascending-`k` adds — identical order
    /// to two [`axpy4`] calls.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn axpy4x2(
        out0: &mut [f64],
        out1: &mut [f64],
        f0: [f64; KU],
        f1: [f64; KU],
        b0: &[f64],
        b1: &[f64],
        b2: &[f64],
        b3: &[f64],
    ) {
        let n = out0.len();
        let out1 = &mut out1[..n];
        let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
        // Fixed-width chunks with array accumulators: each `for l` loop
        // is an independent vector FMA, giving the scheduler 2·JW/lane
        // dependency chains instead of two. Per element the contribution
        // order is still k, k+1, k+2, k+3 — one rounding per add, same
        // bits as the rolled loop; only the residency (register vs
        // memory) of the accumulator changes.
        const JW: usize = 16;
        let mut jc = 0;
        while jc + JW <= n {
            let (c0, c1, c2, c3) = (
                &b0[jc..jc + JW],
                &b1[jc..jc + JW],
                &b2[jc..jc + JW],
                &b3[jc..jc + JW],
            );
            let mut o0 = [0.0; JW];
            o0.copy_from_slice(&out0[jc..jc + JW]);
            let mut o1 = [0.0; JW];
            o1.copy_from_slice(&out1[jc..jc + JW]);
            for l in 0..JW {
                o0[l] += f0[0] * c0[l];
            }
            for l in 0..JW {
                o1[l] += f1[0] * c0[l];
            }
            for l in 0..JW {
                o0[l] += f0[1] * c1[l];
            }
            for l in 0..JW {
                o1[l] += f1[1] * c1[l];
            }
            for l in 0..JW {
                o0[l] += f0[2] * c2[l];
            }
            for l in 0..JW {
                o1[l] += f1[2] * c2[l];
            }
            for l in 0..JW {
                o0[l] += f0[3] * c3[l];
            }
            for l in 0..JW {
                o1[l] += f1[3] * c3[l];
            }
            out0[jc..jc + JW].copy_from_slice(&o0);
            out1[jc..jc + JW].copy_from_slice(&o1);
            jc += JW;
        }
        for j in jc..n {
            let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
            let mut o0 = out0[j];
            o0 += f0[0] * v0;
            o0 += f0[1] * v1;
            o0 += f0[2] * v2;
            o0 += f0[3] * v3;
            out0[j] = o0;
            let mut o1 = out1[j];
            o1 += f1[0] * v0;
            o1 += f1[1] * v1;
            o1 += f1[2] * v2;
            o1 += f1[3] * v3;
            out1[j] = o1;
        }
    }

    /// One row's `KU`-group update with the dense/sparse choice: the
    /// shared tail of the single-row and paired-row drivers.
    #[inline]
    fn row_group(out_row: &mut [f64], f: [f64; KU], b: &[f64], k: usize, n: usize, sparse: bool) {
        if sparse {
            // Sparse group: fall back to per-step skips. Order per
            // element is unchanged; only zero terms drop.
            for (t, &ft) in f.iter().enumerate() {
                // lint:allow(float-eq): exact-zero sparsity skip, gated on a finite b
                if ft == 0.0 {
                    continue;
                }
                axpy1(out_row, ft, &b[(k + t) * n..(k + t + 1) * n]);
            }
        } else {
            axpy4(
                out_row,
                f,
                &b[k * n..(k + 1) * n],
                &b[(k + 1) * n..(k + 2) * n],
                &b[(k + 2) * n..(k + 3) * n],
                &b[(k + 3) * n..(k + 4) * n],
            );
        }
    }

    /// See [`super::scalar::gemm_acc`]; bit-identical, `KU`-fused.
    pub fn gemm_acc(
        out: &mut [f64],
        m: usize,
        n: usize,
        kdim: usize,
        a: &[f64],
        b: &[f64],
        alpha: f64,
        skip_zeros: bool,
    ) {
        check_gemm_shapes!(out, a, b, m, n, kdim);
        let kb = block_rows(n);
        for k0 in (0..kdim).step_by(kb) {
            let k1 = (k0 + kb).min(kdim);
            // Output rows in pairs: each streamed `b` row group is loaded
            // once and feeds both rows (register blocking over `m`). Per
            // element the accumulation stays ascending-`k`, one add per
            // term, so pairing is invisible to the result bits.
            let mut i = 0;
            while i + 2 <= m {
                let (head, tail) = out.split_at_mut((i + 1) * n);
                let out0 = &mut head[i * n..];
                let out1 = &mut tail[..n];
                let a0 = &a[i * kdim..(i + 1) * kdim];
                let a1 = &a[(i + 1) * kdim..(i + 2) * kdim];
                let mut k = k0;
                while k + KU <= k1 {
                    let f0 = [
                        alpha * a0[k],
                        alpha * a0[k + 1],
                        alpha * a0[k + 2],
                        alpha * a0[k + 3],
                    ];
                    let f1 = [
                        alpha * a1[k],
                        alpha * a1[k + 1],
                        alpha * a1[k + 2],
                        alpha * a1[k + 3],
                    ];
                    // lint:allow(float-eq): exact-zero sparsity skip, gated on a finite b
                    let s0 = skip_zeros && f0.iter().any(|&x| x == 0.0);
                    // lint:allow(float-eq): exact-zero sparsity skip, gated on a finite b
                    let s1 = skip_zeros && f1.iter().any(|&x| x == 0.0);
                    if s0 || s1 {
                        row_group(out0, f0, b, k, n, s0);
                        row_group(out1, f1, b, k, n, s1);
                    } else {
                        axpy4x2(
                            out0,
                            out1,
                            f0,
                            f1,
                            &b[k * n..(k + 1) * n],
                            &b[(k + 1) * n..(k + 2) * n],
                            &b[(k + 2) * n..(k + 3) * n],
                            &b[(k + 3) * n..(k + 4) * n],
                        );
                    }
                    k += KU;
                }
                while k < k1 {
                    let f0 = alpha * a0[k];
                    let f1 = alpha * a1[k];
                    let b_row = &b[k * n..(k + 1) * n];
                    // lint:allow(float-eq): exact-zero sparsity skip, gated on a finite b
                    if !(skip_zeros && f0 == 0.0) {
                        axpy1(out0, f0, b_row);
                    }
                    // lint:allow(float-eq): exact-zero sparsity skip, gated on a finite b
                    if !(skip_zeros && f1 == 0.0) {
                        axpy1(out1, f1, b_row);
                    }
                    k += 1;
                }
                i += 2;
            }
            // Odd trailing row: single-row path.
            if i < m {
                let a_row = &a[i * kdim..(i + 1) * kdim];
                let out_row = &mut out[i * n..(i + 1) * n];
                let mut k = k0;
                while k + KU <= k1 {
                    let f = [
                        alpha * a_row[k],
                        alpha * a_row[k + 1],
                        alpha * a_row[k + 2],
                        alpha * a_row[k + 3],
                    ];
                    // lint:allow(float-eq): exact-zero sparsity skip, gated on a finite b
                    let sparse = skip_zeros && f.iter().any(|&x| x == 0.0);
                    row_group(out_row, f, b, k, n, sparse);
                    k += KU;
                }
                while k < k1 {
                    let f = alpha * a_row[k];
                    // lint:allow(float-eq): exact-zero sparsity skip, gated on a finite b
                    if !(skip_zeros && f == 0.0) {
                        axpy1(out_row, f, &b[k * n..(k + 1) * n]);
                    }
                    k += 1;
                }
            }
        }
    }

    /// `NL` output elements at once: independent accumulator chains, each
    /// the exact left-to-right order of a single [`crate::matrix::dot`].
    #[inline]
    fn dot_lanes(out: &mut [f64], a_row: &[f64], b: &[f64], j: usize, kdim: usize) {
        let kk = a_row.len();
        let r0 = &b[j * kdim..][..kk];
        let r1 = &b[(j + 1) * kdim..][..kk];
        let r2 = &b[(j + 2) * kdim..][..kk];
        let r3 = &b[(j + 3) * kdim..][..kk];
        let r4 = &b[(j + 4) * kdim..][..kk];
        let r5 = &b[(j + 5) * kdim..][..kk];
        let r6 = &b[(j + 6) * kdim..][..kk];
        let r7 = &b[(j + 7) * kdim..][..kk];
        let mut s = [0.0f64; NL];
        for (k, &x) in a_row.iter().enumerate() {
            s[0] += x * r0[k];
            s[1] += x * r1[k];
            s[2] += x * r2[k];
            s[3] += x * r3[k];
            s[4] += x * r4[k];
            s[5] += x * r5[k];
            s[6] += x * r6[k];
            s[7] += x * r7[k];
        }
        out[..NL].copy_from_slice(&s);
    }

    /// See [`super::scalar::matmul_t`]; bit-identical, `NL`-lane.
    pub fn matmul_t(out: &mut [f64], m: usize, n: usize, kdim: usize, a: &[f64], b: &[f64]) {
        debug_assert_eq!(out.len(), m * n, "output buffer shape");
        debug_assert_eq!(a.len(), m * kdim, "a buffer shape");
        debug_assert_eq!(b.len(), n * kdim, "b buffer shape");
        let jb = block_rows(kdim);
        for j0 in (0..n).step_by(jb) {
            let j1 = (j0 + jb).min(n);
            for i in 0..m {
                let a_row = &a[i * kdim..(i + 1) * kdim];
                let out_row = &mut out[i * n..(i + 1) * n];
                let mut j = j0;
                while j + NL <= j1 {
                    dot_lanes(&mut out_row[j..], a_row, b, j, kdim);
                    j += NL;
                }
                while j < j1 {
                    out_row[j] = crate::matrix::dot(a_row, &b[j * kdim..(j + 1) * kdim]);
                    j += 1;
                }
            }
        }
    }

    /// See [`super::scalar::t_matmul_acc`]; bit-identical, `KU`-fused
    /// over the outer (reduction) dimension.
    pub fn t_matmul_acc(
        out: &mut [f64],
        m: usize,
        n: usize,
        kdim: usize,
        a: &[f64],
        b: &[f64],
        skip_zeros: bool,
    ) {
        debug_assert_eq!(out.len(), m * n, "output buffer shape");
        debug_assert_eq!(a.len(), kdim * m, "a buffer shape");
        debug_assert_eq!(b.len(), kdim * n, "b buffer shape");
        let mut k = 0;
        while k + KU <= kdim {
            for i in 0..m {
                let f = [
                    a[k * m + i],
                    a[(k + 1) * m + i],
                    a[(k + 2) * m + i],
                    a[(k + 3) * m + i],
                ];
                let out_row = &mut out[i * n..(i + 1) * n];
                // lint:allow(float-eq): exact-zero sparsity skip, gated on a finite b
                if skip_zeros && f.iter().any(|&x| x == 0.0) {
                    for (t, &ft) in f.iter().enumerate() {
                        // lint:allow(float-eq): exact-zero sparsity skip, gated on a finite b
                        if ft == 0.0 {
                            continue;
                        }
                        axpy1(out_row, ft, &b[(k + t) * n..(k + t + 1) * n]);
                    }
                } else {
                    axpy4(
                        out_row,
                        f,
                        &b[k * n..(k + 1) * n],
                        &b[(k + 1) * n..(k + 2) * n],
                        &b[(k + 2) * n..(k + 3) * n],
                        &b[(k + 3) * n..(k + 4) * n],
                    );
                }
            }
            k += KU;
        }
        while k < kdim {
            let a_row = &a[k * m..(k + 1) * m];
            let b_row = &b[k * n..(k + 1) * n];
            for (i, &aki) in a_row.iter().enumerate() {
                // lint:allow(float-eq): exact-zero sparsity skip, gated on a finite b
                if skip_zeros && aki == 0.0 {
                    continue;
                }
                axpy1(&mut out[i * n..(i + 1) * n], aki, b_row);
            }
            k += 1;
        }
    }
}

#[cfg(feature = "simd")]
pub use lanes as active;
#[cfg(not(feature = "simd"))]
pub use scalar as active;

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                // splitmix64 step; maps to roughly [-1, 1).
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
            })
            .collect()
    }

    /// Plants exact zeros so the sparse fallback paths execute.
    fn with_planted_zeros(mut v: Vec<f64>, every: usize) -> Vec<f64> {
        for (i, x) in v.iter_mut().enumerate() {
            if i % every == 0 {
                *x = 0.0;
            }
        }
        v
    }

    fn assert_bits_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "element {i}: {x} vs {y}");
        }
    }

    /// Shapes that exercise full lanes, remainders, and cache-block edges.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (3, 5, 7),
        (7, 13, 33),
        (32, 800, 400),
        (37, 95, 300),
        (5, 8, 4),
    ];

    #[test]
    fn lanes_gemm_acc_bit_identical_to_scalar() {
        for &(m, n, k) in SHAPES {
            for (skip, plant) in [(false, 1000000), (true, 3), (true, 1000000)] {
                let a = with_planted_zeros(pseudo_random(m * k, 1), plant);
                let b = pseudo_random(k * n, 2);
                let mut out_s = pseudo_random(m * n, 3);
                let mut out_l = out_s.clone();
                scalar::gemm_acc(&mut out_s, m, n, k, &a, &b, 0.7, skip);
                lanes::gemm_acc(&mut out_l, m, n, k, &a, &b, 0.7, skip);
                assert_bits_eq(&out_s, &out_l);
            }
        }
    }

    #[test]
    fn lanes_matmul_t_bit_identical_to_scalar() {
        for &(m, n, k) in SHAPES {
            let a = pseudo_random(m * k, 4);
            let b = pseudo_random(n * k, 5);
            let mut out_s = vec![0.0; m * n];
            let mut out_l = vec![0.0; m * n];
            scalar::matmul_t(&mut out_s, m, n, k, &a, &b);
            lanes::matmul_t(&mut out_l, m, n, k, &a, &b);
            assert_bits_eq(&out_s, &out_l);
        }
    }

    #[test]
    fn lanes_t_matmul_acc_bit_identical_to_scalar() {
        for &(m, n, k) in SHAPES {
            for (skip, plant) in [(false, 1000000), (true, 5), (true, 1000000)] {
                let a = with_planted_zeros(pseudo_random(k * m, 6), plant);
                let b = pseudo_random(k * n, 7);
                let mut out_s = pseudo_random(m * n, 8);
                let mut out_l = out_s.clone();
                scalar::t_matmul_acc(&mut out_s, m, n, k, &a, &b, skip);
                lanes::t_matmul_acc(&mut out_l, m, n, k, &a, &b, skip);
                assert_bits_eq(&out_s, &out_l);
            }
        }
    }

    /// The zero-skip is exact for finite data: skipping and not skipping
    /// produce bit-identical outputs when the accumulator never holds
    /// `-0.0` (outputs here start from `+0.0`, and round-to-nearest
    /// addition cannot produce `-0.0` from a `+0.0` accumulator).
    #[test]
    fn zero_skip_is_exact_on_finite_data() {
        let (m, n, k) = (9, 21, 40);
        let a = with_planted_zeros(pseudo_random(m * k, 9), 2);
        let b = pseudo_random(k * n, 10);
        for kernel in [scalar::gemm_acc, lanes::gemm_acc] {
            let mut skipped = vec![0.0; m * n];
            let mut dense = vec![0.0; m * n];
            kernel(&mut skipped, m, n, k, &a, &b, 1.0, true);
            kernel(&mut dense, m, n, k, &a, &b, 1.0, false);
            assert_bits_eq(&skipped, &dense);
        }
        let a_t = with_planted_zeros(pseudo_random(k * m, 11), 2);
        for kernel in [scalar::t_matmul_acc, lanes::t_matmul_acc] {
            let mut skipped = vec![0.0; m * n];
            let mut dense = vec![0.0; m * n];
            kernel(&mut skipped, m, n, k, &a_t, &b, true);
            kernel(&mut dense, m, n, k, &a_t, &b, false);
            assert_bits_eq(&skipped, &dense);
        }
    }

    /// With `skip_zeros` off, a NaN in `b` must propagate through a zero
    /// coefficient in `a` (`0.0 * NaN = NaN`) — the IEEE behavior the
    /// dense path exists to preserve.
    #[test]
    fn dense_path_propagates_nan_through_zero_coefficients() {
        let (m, n, k) = (2, 6, 5);
        let a = vec![0.0; m * k]; // all-zero coefficients
        let mut b = pseudo_random(k * n, 12);
        b[7] = f64::NAN;
        for kernel in [scalar::gemm_acc, lanes::gemm_acc] {
            let mut out = vec![0.0; m * n];
            kernel(&mut out, m, n, k, &a, &b, 1.0, false);
            assert!(
                out.iter().any(|x| x.is_nan()),
                "NaN vanished through the dense path"
            );
        }
    }
}
