//! Dense linear-algebra substrate for the `cloudgen` workspace.
//!
//! Provides a small, dependency-free set of building blocks used by the
//! neural-network ([`nn`]) and GLM ([`glm`]) crates:
//!
//! - [`Mat`]: a row-major dense `f64` matrix with the BLAS-like kernels the
//!   LSTM forward/backward passes need (GEMM in all transpose combinations,
//!   rank-1 updates, row views).
//! - [`cholesky`]: Cholesky factorization and SPD solves, used by the
//!   iteratively-reweighted-least-squares fitter for Poisson regression.
//! - [`numeric`]: numerically-stable scalar helpers (sigmoid, log-sum-exp,
//!   softmax, BCE-with-logits).
//!
//! The crate is deliberately minimal: everything is `f64`, row-major, and
//! bounds-checked in debug builds. It is fast enough to train the
//! reduced-scale LSTMs used by the reproduction experiments on a CPU.
//!
//! [`nn`]: ../nn/index.html
//! [`glm`]: ../glm/index.html

#![forbid(unsafe_code)]

pub mod cholesky;
pub mod kernel;
pub mod matrix;
pub mod numeric;
pub mod pool;

pub use cholesky::{solve_spd, Cholesky, CholeskyError};
pub use matrix::Mat;
pub use pool::{CancelToken, WorkerPool};
