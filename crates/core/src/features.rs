//! Feature engineering shared by the flavor and lifetime models.
//!
//! Both sequence models iterate over the same job stream: all jobs of a
//! period, batch by batch, with an end-of-batch (EOB) token after each batch
//! (§2.2). [`TokenStream`] flattens a trace into that order;
//! [`FeatureSpace`] knows how to encode each step's input features for
//! either model.

use serde::{Deserialize, Serialize};
use survival::LifetimeBins;
use trace::batch::organize_periods;
use trace::period::{TemporalFeaturesSpec, TemporalInfo};
use trace::{FlavorId, Trace};

/// One token of the flavor sequence: a flavor id, or the EOB marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlavorToken {
    /// `0..K` is a flavor; `K` is the EOB token.
    pub id: usize,
    /// Period the token belongs to.
    pub period: u64,
}

/// One job step of the lifetime sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobStep {
    /// Requested flavor.
    pub flavor: FlavorId,
    /// Observed lifetime bin (event bin, or censoring bin if censored).
    pub bin: usize,
    /// True if the job was still running at the censoring horizon.
    pub censored: bool,
    /// Size of the batch this job belongs to.
    pub batch_size: usize,
    /// Zero-based position within the batch (0 = first job after EOB).
    pub pos_in_batch: usize,
    /// Period the job arrived in.
    pub period: u64,
}

/// A trace flattened into model order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenStream {
    /// Flavor-model tokens (jobs interleaved with EOB markers).
    pub tokens: Vec<FlavorToken>,
    /// Lifetime-model steps (jobs only, same order).
    pub jobs: Vec<JobStep>,
}

impl TokenStream {
    /// Builds the stream from a trace.
    ///
    /// `censor_time` is the observation horizon of the trace (in the trace's
    /// own clock): censored jobs get the bin of `censor_time - start`.
    pub fn from_trace(trace: &Trace, bins: &LifetimeBins, censor_time: u64) -> Self {
        let n_flavors = trace.catalog.len();
        let periods = organize_periods(trace);
        let mut tokens = Vec::new();
        let mut jobs = Vec::new();
        for p in &periods {
            for batch in &p.batches {
                for (pos, &idx) in batch.jobs.iter().enumerate() {
                    let job = &trace.jobs[idx];
                    tokens.push(FlavorToken {
                        id: job.flavor.0 as usize,
                        period: p.period,
                    });
                    let duration = job.observed_duration(censor_time);
                    jobs.push(JobStep {
                        flavor: job.flavor,
                        bin: bins.bin_of(duration as f64),
                        censored: job.is_censored(),
                        batch_size: batch.len(),
                        pos_in_batch: pos,
                        period: p.period,
                    });
                }
                tokens.push(FlavorToken {
                    id: n_flavors,
                    period: p.period,
                });
            }
        }
        Self { tokens, jobs }
    }

    /// Number of flavor tokens (jobs + EOB markers).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True if the stream holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Dimensions and encoders for both models' input features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSpace {
    /// Number of flavors `K` (the EOB token is id `K`).
    pub n_flavors: usize,
    /// Lifetime bin scheme (J bins).
    pub bins: LifetimeBins,
    /// Temporal feature encoding.
    pub temporal: TemporalFeaturesSpec,
}

impl FeatureSpace {
    /// Creates a feature space.
    pub fn new(n_flavors: usize, bins: LifetimeBins, temporal: TemporalFeaturesSpec) -> Self {
        Self {
            n_flavors,
            bins,
            temporal,
        }
    }

    /// Number of lifetime bins `J`.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// Flavor-model input dimension: previous-token one-hot (K+1) plus
    /// temporal features.
    pub fn flavor_input_dim(&self) -> usize {
        self.n_flavors + 1 + self.temporal.dim()
    }

    /// Flavor-model output dimension: K flavors + EOB.
    pub fn flavor_output_dim(&self) -> usize {
        self.n_flavors + 1
    }

    /// Lifetime-model input dimension: temporal + current-flavor one-hot (K)
    /// + batch size (1) + batch position (2: start flag, log position) +
    /// previous-lifetime survival encoding (J) + previous-termination
    /// indicators (J).
    ///
    /// The two batch-position features extend the paper's §2.3.3 list:
    /// without them, a batch boundary is invisible to the lifetime sequence
    /// (the job stream has no EOB steps), and the network must *infer* from
    /// recurrent state whether to trust the previous job's lifetime — which
    /// needs far more training data than our reduced-scale setup has. The
    /// position is always known at generation time, so the extension is
    /// free.
    pub fn lifetime_input_dim(&self) -> usize {
        self.temporal.dim() + self.n_flavors + 3 + 2 * self.n_bins()
    }

    /// Encodes one flavor-model step into `out`.
    ///
    /// `prev_token` is the id of the previous token (`K` for EOB / sequence
    /// start); `period`/`doh_override` drive the temporal block.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`Self::flavor_input_dim`] or
    /// `prev_token > K`.
    pub fn encode_flavor_step(
        &self,
        prev_token: usize,
        period: u64,
        doh_override: Option<u32>,
        out: &mut [f64],
    ) {
        let dim = self.flavor_input_dim();
        assert!(out.len() >= dim, "flavor feature slice too short");
        assert!(
            prev_token <= self.n_flavors,
            "token {prev_token} out of range"
        );
        out[..dim].iter_mut().for_each(|x| *x = 0.0);
        out[prev_token] = 1.0;
        let info = TemporalInfo::of_period(period);
        self.temporal
            .encode_into(info, doh_override, &mut out[self.n_flavors + 1..dim]);
    }

    /// Encodes one lifetime-model step into `out`.
    ///
    /// `prev` is the previous job's observed `(bin, censored)` state, or
    /// `None` at the start of a sequence. Per §2.3.3:
    ///
    /// - the previous lifetime is survival-encoded (1 for every bin `<=`
    ///   the observed bin) — censored jobs still get survival credit up to
    ///   their censoring bin;
    /// - a second block marks bins where the previous job is *known to have
    ///   terminated* (1 for bins `>=` its event bin); all zeros if the
    ///   previous job is censored.
    ///
    /// # Panics
    ///
    /// Panics if `out` is too short or indices are out of range.
    pub fn encode_lifetime_step(
        &self,
        flavor: FlavorId,
        batch_size: usize,
        pos_in_batch: usize,
        prev: Option<(usize, bool)>,
        period: u64,
        doh_override: Option<u32>,
        out: &mut [f64],
    ) {
        let dim = self.lifetime_input_dim();
        assert!(out.len() >= dim, "lifetime feature slice too short");
        assert!((flavor.0 as usize) < self.n_flavors, "flavor out of range");
        out[..dim].iter_mut().for_each(|x| *x = 0.0);

        let t_dim = self.temporal.dim();
        let info = TemporalInfo::of_period(period);
        self.temporal
            .encode_into(info, doh_override, &mut out[..t_dim]);

        out[t_dim + flavor.0 as usize] = 1.0;
        // Batch size, log-compressed to keep the scale near unity.
        out[t_dim + self.n_flavors] = (1.0 + batch_size as f64).ln();
        // Batch position: a batch-start flag plus the log position.
        out[t_dim + self.n_flavors + 1] = if pos_in_batch == 0 { 1.0 } else { 0.0 };
        out[t_dim + self.n_flavors + 2] = (1.0 + pos_in_batch as f64).ln();

        if let Some((bin, censored)) = prev {
            let j = self.n_bins();
            assert!(bin < j, "previous bin out of range");
            let surv_base = t_dim + self.n_flavors + 3;
            for b in 0..=bin {
                out[surv_base + b] = 1.0;
            }
            if !censored {
                let term_base = surv_base + j;
                for b in bin..j {
                    out[term_base + b] = 1.0;
                }
            }
        }
    }

    /// Builds the BCE target and mask rows for one job step (§2.3.2).
    ///
    /// Uncensored in bin `b`: mask covers bins `0..=b`; target is 1 at `b`.
    /// Censored in bin `c`: mask covers bins `0..c` (survival credit only);
    /// all targets 0.
    ///
    /// # Panics
    ///
    /// Panics if slices are shorter than the bin count or `bin` is out of
    /// range.
    pub fn lifetime_target_mask(
        &self,
        bin: usize,
        censored: bool,
        target: &mut [f64],
        mask: &mut [f64],
    ) {
        let j = self.n_bins();
        assert!(
            target.len() >= j && mask.len() >= j,
            "target/mask slices too short"
        );
        assert!(bin < j, "bin out of range");
        target[..j].iter_mut().for_each(|x| *x = 0.0);
        mask[..j].iter_mut().for_each(|x| *x = 0.0);
        if censored {
            for b in 0..bin {
                mask[b] = 1.0;
            }
        } else {
            for b in 0..=bin {
                mask[b] = 1.0;
            }
            target[bin] = 1.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::{FlavorCatalog, Job, UserId};

    fn bins() -> LifetimeBins {
        LifetimeBins::from_uppers(vec![600.0, 3600.0, 86_400.0])
    }

    fn space() -> FeatureSpace {
        FeatureSpace::new(16, bins(), TemporalFeaturesSpec::new(3))
    }

    fn mk_trace() -> Trace {
        // Period 0: user 1 batch of 2; user 2 batch of 1. Period 1: user 1.
        let jobs = vec![
            Job {
                start: 0,
                end: Some(600),
                flavor: FlavorId(2),
                user: UserId(1),
            },
            Job {
                start: 0,
                end: Some(1200),
                flavor: FlavorId(2),
                user: UserId(1),
            },
            Job {
                start: 0,
                end: None,
                flavor: FlavorId(5),
                user: UserId(2),
            },
            Job {
                start: 300,
                end: Some(900),
                flavor: FlavorId(1),
                user: UserId(1),
            },
        ];
        Trace::new(jobs, FlavorCatalog::azure16())
    }

    #[test]
    fn token_stream_order_and_eob() {
        let t = mk_trace();
        let s = TokenStream::from_trace(&t, &bins(), 10_000);
        // Tokens: f2, f2, EOB, f5, EOB, f1, EOB.
        let ids: Vec<usize> = s.tokens.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![2, 2, 16, 5, 16, 1, 16]);
        assert_eq!(s.jobs.len(), 4);
        assert_eq!(s.jobs[0].batch_size, 2);
        assert_eq!(s.jobs[1].pos_in_batch, 1);
        assert_eq!(s.jobs[2].batch_size, 1);
        assert_eq!(s.jobs[2].pos_in_batch, 0);
        assert_eq!(s.jobs[3].period, 1);
    }

    #[test]
    fn censored_job_gets_censor_bin() {
        let t = mk_trace();
        let s = TokenStream::from_trace(&t, &bins(), 10_000);
        // Job 2 censored at 10_000 - 0 = 10_000 s -> bin 2 ([3600, 86400)).
        assert!(s.jobs[2].censored);
        assert_eq!(s.jobs[2].bin, 2);
        // Job 0: 600 s -> bin 1 ([600, 3600)).
        assert!(!s.jobs[0].censored);
        assert_eq!(s.jobs[0].bin, 1);
    }

    #[test]
    fn flavor_encoding_layout() {
        let fs = space();
        let mut v = vec![0.0; fs.flavor_input_dim()];
        fs.encode_flavor_step(16, 0, None, &mut v); // EOB as prev
        assert_eq!(v[16], 1.0);
        assert_eq!(v[..17].iter().sum::<f64>(), 1.0);
        // Temporal block starts at 17: hour 0 set.
        assert_eq!(v[17], 1.0);
    }

    #[test]
    fn lifetime_encoding_prev_uncensored() {
        let fs = space();
        let mut v = vec![0.0; fs.lifetime_input_dim()];
        fs.encode_lifetime_step(FlavorId(3), 4, 1, Some((1, false)), 0, None, &mut v);
        let t = fs.temporal.dim();
        assert_eq!(v[t + 3], 1.0); // flavor one-hot
        assert!((v[t + 16] - 5.0f64.ln()).abs() < 1e-12); // log(1 + 4)
        assert_eq!(v[t + 17], 0.0); // not a batch start (pos 1)
        assert!((v[t + 18] - 2.0f64.ln()).abs() < 1e-12); // log(1 + 1)
        let sb = t + 19;
        // Survival encoding of bin 1: bins 0, 1 set.
        assert_eq!(&v[sb..sb + 4], &[1.0, 1.0, 0.0, 0.0]);
        // Termination indicators: bins >= 1 set.
        assert_eq!(&v[sb + 4..sb + 8], &[0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn lifetime_encoding_prev_censored_has_no_termination() {
        let fs = space();
        let mut v = vec![0.0; fs.lifetime_input_dim()];
        fs.encode_lifetime_step(FlavorId(0), 1, 0, Some((2, true)), 0, None, &mut v);
        let sb = fs.temporal.dim() + 19;
        assert_eq!(&v[sb..sb + 4], &[1.0, 1.0, 1.0, 0.0]);
        assert_eq!(&v[sb + 4..sb + 8], &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn lifetime_encoding_no_prev_is_zero() {
        let fs = space();
        let mut v = vec![0.0; fs.lifetime_input_dim()];
        fs.encode_lifetime_step(FlavorId(0), 1, 0, None, 0, None, &mut v);
        let sb = fs.temporal.dim() + 19;
        assert!(v[sb..sb + 8].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn target_mask_uncensored() {
        let fs = space();
        let mut target = vec![9.0; 4];
        let mut mask = vec![9.0; 4];
        fs.lifetime_target_mask(2, false, &mut target, &mut mask);
        assert_eq!(target, vec![0.0, 0.0, 1.0, 0.0]);
        assert_eq!(mask, vec![1.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn target_mask_censored() {
        let fs = space();
        let mut target = vec![9.0; 4];
        let mut mask = vec![9.0; 4];
        fs.lifetime_target_mask(2, true, &mut target, &mut mask);
        assert_eq!(target, vec![0.0; 4]);
        assert_eq!(mask, vec![1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn censored_in_bin_zero_contributes_nothing() {
        let fs = space();
        let mut target = vec![9.0; 4];
        let mut mask = vec![9.0; 4];
        fs.lifetime_target_mask(0, true, &mut target, &mut mask);
        assert_eq!(mask, vec![0.0; 4]);
    }

    #[test]
    fn dims_are_consistent() {
        let fs = space();
        assert_eq!(fs.flavor_input_dim(), 17 + fs.temporal.dim());
        assert_eq!(fs.flavor_output_dim(), 17);
        assert_eq!(fs.lifetime_input_dim(), fs.temporal.dim() + 16 + 3 + 8);
    }
}
