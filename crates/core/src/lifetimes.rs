//! Stage 3: the lifetime (hazard) model (§2.3) and its baselines (§5.3).
//!
//! The LSTM emits, per job, one logit per lifetime bin; each logit maps
//! through a logistic function to the discrete hazard `h(j)`. Training uses
//! the censoring-aware masked BCE of §2.3.2: an uncensored job in bin `b`
//! contributes hazard terms for bins `0..=b`; a censored job contributes
//! only the survival terms for bins before its censoring bin. This is the
//! paper's novel *inter-case* extension of neural survival analysis: the
//! recurrent state lets each job's hazard depend on the lifetimes of all
//! preceding jobs.

use crate::features::{FeatureSpace, JobStep, TokenStream};
use crate::flavors::lr_factor;
use crate::train::{
    emit_parallel_telemetry, EpochOutcome, NoHooks, Parallelism, StepCtx, StepStats, TrainAbort,
    TrainConfig, TrainHooks,
};
use linalg::numeric::{clamp_prob, sigmoid, softmax_inplace};
use linalg::{Mat, WorkerPool};
use nn::accum::GradAccum;
use nn::loss::{masked_bce_with_logits, survival_softmax_loss};
use nn::lstm::LstmState;
use nn::{Adam, AdamConfig, LstmNetwork, StepError};
use obsv::{profile, EpochEvent, Event, NullRecorder, Recorder, Stopwatch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use survival::funcs::{hazard_to_pmf, pmf_argmax, pmf_to_hazard, sample_hazard_chain};
use survival::{CensoringPolicy, KaplanMeier, Observation};

/// Prediction metrics for lifetime models (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeEval {
    /// Mean binary cross-entropy per unmasked output (`None` for
    /// non-probabilistic baselines).
    pub bce: Option<f64>,
    /// 1-best bin error rate over uncensored jobs.
    pub one_best_err: f64,
    /// Uncensored jobs scored for 1-best.
    pub scored_jobs: usize,
}

/// Output parameterization of the lifetime network (§2.3.1 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LifetimeHead {
    /// Per-bin logistic hazards with the censoring-aware masked BCE (the
    /// paper's choice, after Kvamme & Borgan).
    Hazard,
    /// A softmax PMF over bins with a censoring-aware categorical loss.
    Pmf,
}

fn default_head() -> LifetimeHead {
    LifetimeHead::Hazard
}

/// The trained lifetime LSTM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LifetimeModel {
    net: LstmNetwork,
    space: FeatureSpace,
    #[serde(default = "default_head")]
    head: LifetimeHead,
    /// Mean training loss per epoch (for diagnostics).
    pub train_losses: Vec<f64>,
}

/// Generation-time state: recurrent state plus the previously generated
/// job's lifetime bin.
#[derive(Debug, Clone)]
pub struct LifetimeGenState {
    state: LstmState,
    prev: Option<(usize, bool)>,
}

impl LifetimeModel {
    /// Trains the lifetime LSTM with the paper's hazard head.
    pub fn fit(stream: &TokenStream, space: FeatureSpace, cfg: TrainConfig) -> Self {
        Self::fit_with_head(stream, space, cfg, LifetimeHead::Hazard)
    }

    /// [`LifetimeModel::fit`] with telemetry: emits one [`EpochEvent`]
    /// (stage `"lifetime"`) per epoch, carrying the mean loss, the
    /// pre-clip gradient norms from [`Adam::step`], the learning-rate
    /// factor, and wall-clock timing.
    pub fn fit_recorded(
        stream: &TokenStream,
        space: FeatureSpace,
        cfg: TrainConfig,
        rec: &dyn Recorder,
    ) -> Self {
        Self::fit_with_head_recorded(stream, space, cfg, LifetimeHead::Hazard, rec)
    }

    /// Trains with an explicit output head (hazard vs PMF ablation).
    pub fn fit_with_head(
        stream: &TokenStream,
        space: FeatureSpace,
        cfg: TrainConfig,
        head: LifetimeHead,
    ) -> Self {
        Self::fit_with_head_recorded(stream, space, cfg, head, &NullRecorder)
    }

    /// [`LifetimeModel::fit_with_head`] with telemetry (see
    /// [`LifetimeModel::fit_recorded`]).
    pub fn fit_with_head_recorded(
        stream: &TokenStream,
        space: FeatureSpace,
        cfg: TrainConfig,
        head: LifetimeHead,
        rec: &dyn Recorder,
    ) -> Self {
        Self::fit_par_recorded(stream, space, cfg, head, Parallelism::single(), rec)
    }

    /// [`LifetimeModel::fit_with_head_recorded`] under an explicit
    /// data-parallel policy. The shard layout (`par.shard_seqs`) is part
    /// of the numeric result; the worker count is not.
    pub fn fit_par_recorded(
        stream: &TokenStream,
        space: FeatureSpace,
        cfg: TrainConfig,
        head: LifetimeHead,
        par: Parallelism,
        rec: &dyn Recorder,
    ) -> Self {
        let _prof = profile::span("train");
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5);
        let mut trainer = LifetimeTrainer::new(stream, space, cfg, head, &mut rng);
        trainer.set_parallelism(par);
        for _ in 0..cfg.epochs {
            // NoHooks never aborts, so the outcome is always Ok; losses and
            // telemetry accumulate inside the trainer either way.
            let _ = trainer.run_epoch(stream, 1.0, &mut rng, rec, &mut NoHooks);
        }
        trainer.into_model()
    }

    /// The output head this model was trained with.
    pub fn head(&self) -> LifetimeHead {
        self.head
    }

    /// Converts one row of raw logits to a hazard vector per the head.
    fn logits_to_hazard(&self, row: &[f64]) -> Vec<f64> {
        match self.head {
            LifetimeHead::Hazard => row.iter().map(|&z| sigmoid(z)).collect(),
            LifetimeHead::Pmf => {
                let mut pmf = row.to_vec();
                softmax_inplace(&mut pmf);
                pmf_to_hazard(&pmf)
            }
        }
    }

    /// The feature space the model was trained with.
    pub fn space(&self) -> &FeatureSpace {
        &self.space
    }

    /// Mutable access to the underlying network — exists so the
    /// fault-injection harness can corrupt a trained model in tests; not
    /// part of the supported API.
    #[doc(hidden)]
    pub fn net_mut(&mut self) -> &mut LstmNetwork {
        &mut self.net
    }

    /// Teacher-forced hazard prediction for every job in a stream.
    ///
    /// Returns one hazard vector (length J, probabilities) per job —
    /// the input to Table 4's survival-curve construction.
    pub fn predict_hazards(&self, stream: &TokenStream) -> Vec<Vec<f64>> {
        let mut state = self.net.zero_state(1);
        let mut x = Mat::zeros(1, self.space.lifetime_input_dim());
        let mut out = Vec::with_capacity(stream.jobs.len());
        for (idx, step) in stream.jobs.iter().enumerate() {
            let prev = idx
                .checked_sub(1)
                .map(|p| (stream.jobs[p].bin, stream.jobs[p].censored));
            self.space.encode_lifetime_step(
                step.flavor,
                step.batch_size,
                step.pos_in_batch,
                prev,
                step.period,
                None,
                x.row_mut(0),
            );
            let logits = self.net.step(&x, &mut state);
            out.push(self.logits_to_hazard(logits.row(0)));
        }
        out
    }

    /// Teacher-forced evaluation: masked BCE and 1-best bin error (§5.3).
    pub fn evaluate(&self, stream: &TokenStream) -> LifetimeEval {
        let hazards = self.predict_hazards(stream);
        eval_from_hazards(&self.space, stream, |i, _| hazards[i].clone())
    }

    /// Starts a generation run.
    pub fn begin(&self) -> LifetimeGenState {
        LifetimeGenState {
            state: self.net.zero_state(1),
            prev: None,
        }
    }

    /// Predicts the hazard for the next job and samples its lifetime bin,
    /// re-encoding the sampled bin as the next step's "previous lifetime".
    pub fn sample_step(
        &self,
        gen: &mut LifetimeGenState,
        flavor: trace::FlavorId,
        batch_size: usize,
        pos_in_batch: usize,
        period: u64,
        doh_override: Option<u32>,
        rng: &mut impl Rng,
    ) -> usize {
        let mut x = Mat::zeros(1, self.space.lifetime_input_dim());
        self.space.encode_lifetime_step(
            flavor,
            batch_size,
            pos_in_batch,
            gen.prev,
            period,
            doh_override,
            x.row_mut(0),
        );
        let logits = self.net.step(&x, &mut gen.state);
        let hazard = self.logits_to_hazard(logits.row(0));
        let bin = sample_hazard_chain(&hazard, rng);
        gen.prev = Some((bin, false));
        bin
    }

    /// [`Self::sample_step`] with divergence detection: returns `None`
    /// instead of sampling when the network emits a hazard that is not a
    /// finite probability (a diverged or corrupted model). On `None` the
    /// recurrent state in `gen` has already absorbed the bad step —
    /// callers that fall back to a baseline should restart it with
    /// [`Self::begin`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_sample_step(
        &self,
        gen: &mut LifetimeGenState,
        flavor: trace::FlavorId,
        batch_size: usize,
        pos_in_batch: usize,
        period: u64,
        doh_override: Option<u32>,
        rng: &mut impl Rng,
    ) -> Option<usize> {
        let mut x = Mat::zeros(1, self.space.lifetime_input_dim());
        self.space.encode_lifetime_step(
            flavor,
            batch_size,
            pos_in_batch,
            gen.prev,
            period,
            doh_override,
            x.row_mut(0),
        );
        let logits = self.net.step(&x, &mut gen.state);
        let hazard = self.logits_to_hazard(logits.row(0));
        if hazard.iter().any(|h| !h.is_finite() || !(0.0..=1.0).contains(h)) {
            return None;
        }
        let bin = sample_hazard_chain(&hazard, rng);
        gen.prev = Some((bin, false));
        Some(bin)
    }
}

/// Epoch-granular trainer for the lifetime LSTM — the [`LifetimeModel`]
/// counterpart of [`crate::flavors::FlavorTrainer`], with the same
/// checkpoint/rollback contract: serializable between epochs, identical
/// math to the plain `fit` path, `run_epoch` advances the `epochs_done`
/// cursor only on success.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LifetimeTrainer {
    net: LstmNetwork,
    opt: Adam,
    space: FeatureSpace,
    cfg: TrainConfig,
    head: LifetimeHead,
    chunk_starts: Vec<usize>,
    train_losses: Vec<f64>,
    // Defaulted so checkpoints written before the parallel runtime load
    // as serial (their actual layout).
    #[serde(default)]
    par: Parallelism,
}

impl LifetimeTrainer {
    /// Initializes network weights from `rng` and the chunk order from the
    /// stream (the same construction [`LifetimeModel::fit_with_head`] uses).
    pub fn new(
        stream: &TokenStream,
        space: FeatureSpace,
        cfg: TrainConfig,
        head: LifetimeHead,
        rng: &mut impl Rng,
    ) -> Self {
        let j = space.n_bins();
        // The skip connection gives the "repeat the previous job's bin" rule
        // a direct linear path from the survival/termination encodings to the
        // hazard logits.
        let net = LstmNetwork::with_skip(space.lifetime_input_dim(), cfg.hidden, cfg.layers, j, rng);
        let opt = Adam::new(AdamConfig {
            lr: cfg.lr,
            weight_decay: cfg.weight_decay,
            clip_norm: Some(cfg.clip_norm),
            ..Default::default()
        });
        let n = stream.jobs.len();
        let l = cfg.seq_len;
        let chunk_starts: Vec<usize> = (0..n.saturating_sub(l - 1)).step_by(l).collect();
        Self {
            net,
            opt,
            space,
            cfg,
            head,
            chunk_starts,
            train_losses: Vec::new(),
            par: Parallelism::default(),
        }
    }

    /// Epochs completed so far — the resume cursor.
    pub fn epochs_done(&self) -> usize {
        self.train_losses.len()
    }

    /// The configuration this trainer was built with.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// The data-parallel policy in effect.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Sets the data-parallel policy. The shard layout (`shard_seqs`)
    /// changes the floating-point grouping of the gradient reduction;
    /// the thread count never does.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    /// Loss-normalizer contribution of the job at `idx`: how many loss
    /// terms it produces under the current head. Knowing this *before*
    /// the backward pass lets each shard scale its own gradients, which
    /// keeps the single-shard layout bit-identical to the serial trainer.
    fn loss_terms(&self, stream: &TokenStream, idx: usize) -> usize {
        match self.head {
            LifetimeHead::Hazard => {
                let step = &stream.jobs[idx];
                if step.censored {
                    step.bin
                } else {
                    step.bin + 1
                }
            }
            LifetimeHead::Pmf => 1,
        }
    }

    /// Loss-normalizer of one minibatch: the integer total of
    /// [`Self::loss_terms`] over every sequence position of every chunk.
    /// Computed on the main thread before any fan-out, so the shard count
    /// cannot touch it.
    fn minibatch_loss_terms(&self, stream: &TokenStream, mb: &[usize], l: usize) -> usize {
        mb.iter()
            .map(|&start| {
                (0..l)
                    .map(|t| self.loss_terms(stream, start + t))
                    .sum::<usize>()
            })
            .sum()
    }

    /// Mean loss per completed epoch.
    pub fn losses(&self) -> &[f64] {
        &self.train_losses
    }

    /// Runs the next epoch; see [`crate::flavors::FlavorTrainer::run_epoch`]
    /// for the shared contract (lr scaling, skip-step accounting, abort
    /// semantics).
    ///
    /// # Errors
    ///
    /// Propagates the first [`TrainAbort`] from `hooks.post_step`; the
    /// aborted epoch is not counted, but partial updates have already been
    /// applied — retrying callers must restore a pre-epoch snapshot.
    pub fn run_epoch(
        &mut self,
        stream: &TokenStream,
        lr_scale: f64,
        rng: &mut impl Rng,
        rec: &dyn Recorder,
        hooks: &mut dyn TrainHooks,
    ) -> Result<EpochOutcome, TrainAbort> {
        let _prof = profile::span("epoch");
        let epoch = self.train_losses.len();
        let lr_factor = lr_factor(epoch, self.cfg.epochs);
        self.opt.config_mut().lr = self.cfg.lr * lr_factor * lr_scale;
        self.chunk_starts.shuffle(rng);
        let order = self.chunk_starts.clone();
        let l = self.cfg.seq_len;
        let j = self.space.n_bins();
        let dim = self.space.lifetime_input_dim();
        let pool = WorkerPool::new(self.par.threads);
        let epoch_start = Stopwatch::new();
        let mut epoch_loss = 0.0;
        let mut epoch_count = 0usize;
        let mut norm_sum = 0.0;
        let mut norm_max = 0.0f64;
        let mut opt_steps = 0usize;
        let mut skipped_steps = 0usize;
        let mut shard_ms: Vec<f64> = Vec::new();
        for (step_idx, mb) in order.chunks(self.cfg.minibatch).enumerate() {
            let _prof = profile::span("minibatch");
            // The loss normalizer is a function of the targets alone
            // (mask widths / row counts), so it is known before any
            // forward pass and each shard can scale its own dlogits.
            let mb_count = self.minibatch_loss_terms(stream, mb, l);
            let scale = 1.0 / mb_count.max(1) as f64;
            let shards = self.par.shards(mb.len());
            let net = &self.net;
            let space = &self.space;
            let head = self.head;
            let results = pool.map(&shards, |_, range| {
                let shard_start = Stopwatch::new();
                let rows = &mb[range.clone()];
                let sb = rows.len();
                let mut xs = Vec::with_capacity(l);
                let mut targets = Vec::with_capacity(l);
                let mut masks = Vec::with_capacity(l);
                let mut events: Vec<Vec<(usize, bool)>> = Vec::with_capacity(l);
                for t in 0..l {
                    let mut x = Mat::zeros(sb, dim);
                    let mut target = Mat::zeros(sb, j);
                    let mut mask = Mat::zeros(sb, j);
                    let mut ev = Vec::with_capacity(sb);
                    for (row, &start) in rows.iter().enumerate() {
                        let idx = start + t;
                        let step = &stream.jobs[idx];
                        let prev = idx
                            .checked_sub(1)
                            .map(|p| (stream.jobs[p].bin, stream.jobs[p].censored));
                        space.encode_lifetime_step(
                            step.flavor,
                            step.batch_size,
                            step.pos_in_batch,
                            prev,
                            step.period,
                            None,
                            x.row_mut(row),
                        );
                        space.lifetime_target_mask(
                            step.bin,
                            step.censored,
                            target.row_mut(row),
                            mask.row_mut(row),
                        );
                        ev.push((step.bin, step.censored));
                    }
                    xs.push(x);
                    targets.push(target);
                    masks.push(mask);
                    events.push(ev);
                }
                let mut local = net.clone();
                local.zero_grad();
                let (logits, cache) = local.forward(&xs);
                let mut sh_loss = 0.0;
                let mut dlogits = Vec::with_capacity(l);
                for (t, logit) in logits.iter().enumerate() {
                    let (loss, _count, mut d) = match head {
                        LifetimeHead::Hazard => {
                            masked_bce_with_logits(logit, &targets[t], &masks[t])
                        }
                        LifetimeHead::Pmf => survival_softmax_loss(logit, &events[t]),
                    };
                    sh_loss += loss;
                    d.scale(scale);
                    dlogits.push(d);
                }
                local.backward(&cache, &dlogits);
                let grads = GradAccum::take(&mut local);
                let wall = shard_start.elapsed_ms();
                (sh_loss, grads, wall)
            });
            let mut mb_loss = 0.0;
            let mut accums = Vec::with_capacity(results.len());
            for (slot, (sh_loss, grads, wall)) in results.into_iter().enumerate() {
                mb_loss += sh_loss;
                accums.push(grads);
                if slot >= shard_ms.len() {
                    shard_ms.push(0.0);
                }
                // lint:allow(unordered-reduce): per-slot wall-clock telemetry, accumulated in slot order; never feeds the numeric result
                shard_ms[slot] += wall;
            }
            epoch_loss += mb_loss;
            epoch_count += mb_count;
            if let Some(merged) = nn::accum::tree_reduce(accums) {
                merged.install(&mut self.net);
            }

            let ctx = StepCtx {
                stage: "lifetime",
                epoch,
                step: step_idx,
            };
            let mut params = self.net.params_mut();
            hooks.pre_step(&ctx, &mut params);
            let (grad_norm, skipped) = match self.opt.step(&mut params) {
                Ok(norm) => (norm, false),
                Err(StepError::NonFiniteGradient { norm }) => (norm, true),
            };
            drop(params);
            opt_steps += 1;
            if skipped {
                skipped_steps += 1;
            } else {
                norm_sum += grad_norm;
                norm_max = norm_max.max(grad_norm);
            }
            hooks.post_step(
                &ctx,
                &StepStats {
                    loss: mb_loss / mb_count.max(1) as f64,
                    grad_norm,
                    skipped,
                },
            )?;
        }
        let mean_loss = epoch_loss / epoch_count.max(1) as f64;
        self.train_losses.push(mean_loss);
        let wall_ms = epoch_start.elapsed_ms();
        rec.record(Event::Epoch(EpochEvent {
            stage: "lifetime".into(),
            epoch,
            mean_loss,
            grad_norm_pre_clip: norm_sum / opt_steps.saturating_sub(skipped_steps).max(1) as f64,
            grad_norm_pre_clip_max: norm_max,
            lr_factor,
            tokens: epoch_count,
            wall_ms,
            skipped_steps,
        }));
        emit_parallel_telemetry("lifetime", epoch_count, wall_ms, &shard_ms, rec);
        Ok(EpochOutcome {
            mean_loss,
            steps: opt_steps,
            skipped_steps,
        })
    }

    /// Finalizes training into a [`LifetimeModel`].
    pub fn into_model(self) -> LifetimeModel {
        LifetimeModel {
            net: self.net,
            space: self.space,
            head: self.head,
            train_losses: self.train_losses,
        }
    }
}

/// Non-neural lifetime predictors from §5.3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LifetimeBaseline {
    /// Hazard 0.5 in every bin.
    CoinFlip,
    /// One Kaplan–Meier hazard for all flavors pooled.
    OverallKm {
        /// The fitted estimator.
        km: KaplanMeier,
    },
    /// A Kaplan–Meier hazard per flavor (falling back to the overall one
    /// for flavors unseen in training).
    PerFlavorKm {
        /// Per-flavor estimators (index = flavor id), `None` if unseen.
        per_flavor: Vec<Option<KaplanMeier>>,
        /// Pooled fallback.
        overall: KaplanMeier,
    },
    /// Predicts the previous job's bin; falls back to the overall KM mode at
    /// batch starts. Non-probabilistic.
    RepeatLifetime {
        /// Pooled fallback for batch starts.
        overall: KaplanMeier,
    },
}

impl LifetimeBaseline {
    /// Fits the overall Kaplan–Meier baseline.
    pub fn overall_km(train: &TokenStream, space: &FeatureSpace, policy: CensoringPolicy) -> Self {
        Self::OverallKm {
            km: fit_km(train.jobs.iter(), space, policy),
        }
    }

    /// Fits the per-flavor Kaplan–Meier baseline.
    pub fn per_flavor_km(
        train: &TokenStream,
        space: &FeatureSpace,
        policy: CensoringPolicy,
    ) -> Self {
        let overall = fit_km(train.jobs.iter(), space, policy);
        let per_flavor = (0..space.n_flavors)
            .map(|f| {
                let jobs: Vec<&JobStep> = train
                    .jobs
                    .iter()
                    .filter(|j| j.flavor.0 as usize == f)
                    .collect();
                if jobs.is_empty() {
                    None
                } else {
                    Some(fit_km(jobs.into_iter(), space, policy))
                }
            })
            .collect();
        Self::PerFlavorKm {
            per_flavor,
            overall,
        }
    }

    /// Fits the repeat-lifetime baseline.
    pub fn repeat_lifetime(
        train: &TokenStream,
        space: &FeatureSpace,
        policy: CensoringPolicy,
    ) -> Self {
        Self::RepeatLifetime {
            overall: fit_km(train.jobs.iter(), space, policy),
        }
    }

    /// The hazard this baseline predicts for job `i` of the stream (given
    /// true history, matching teacher-forced evaluation). `None` for the
    /// non-probabilistic RepeatLifetime.
    pub fn hazard_for(&self, stream: &TokenStream, i: usize, n_bins: usize) -> Option<Vec<f64>> {
        match self {
            LifetimeBaseline::CoinFlip => Some(vec![0.5; n_bins]),
            LifetimeBaseline::OverallKm { km } => Some(km.hazard().to_vec()),
            LifetimeBaseline::PerFlavorKm {
                per_flavor,
                overall,
            } => {
                let f = stream.jobs[i].flavor.0 as usize;
                Some(
                    per_flavor
                        .get(f)
                        .and_then(|o| o.as_ref())
                        .unwrap_or(overall)
                        .hazard()
                        .to_vec(),
                )
            }
            LifetimeBaseline::RepeatLifetime { .. } => None,
        }
    }

    /// Teacher-forced evaluation mirroring [`LifetimeModel::evaluate`].
    pub fn evaluate(&self, stream: &TokenStream, space: &FeatureSpace) -> LifetimeEval {
        match self {
            LifetimeBaseline::RepeatLifetime { overall } => {
                let fallback = pmf_argmax(&overall.pmf());
                let mut errors = 0usize;
                let mut scored = 0usize;
                for (i, step) in stream.jobs.iter().enumerate() {
                    if step.censored {
                        continue;
                    }
                    let pred = if step.pos_in_batch == 0 {
                        fallback
                    } else {
                        stream.jobs[i - 1].bin
                    };
                    scored += 1;
                    if pred != step.bin {
                        errors += 1;
                    }
                }
                LifetimeEval {
                    bce: None,
                    one_best_err: errors as f64 / scored.max(1) as f64,
                    scored_jobs: scored,
                }
            }
            _ => eval_from_hazards(space, stream, |i, n| {
                self.hazard_for(stream, i, n)
                    // lint:allow(no-panic): match arm excludes OneBest, every other baseline is probabilistic
                    .expect("probabilistic baseline")
            }),
        }
    }
}

/// Fits a KM estimator from job steps.
fn fit_km<'a>(
    jobs: impl Iterator<Item = &'a JobStep>,
    space: &FeatureSpace,
    policy: CensoringPolicy,
) -> KaplanMeier {
    let obs: Vec<Observation> = jobs
        .map(|j| Observation {
            bin: j.bin,
            censored: j.censored,
        })
        .collect();
    // Jeffreys smoothing keeps small-sample (per-flavor) estimators from
    // emitting 0/1 hazards that explode the log loss.
    KaplanMeier::fit_smoothed(&space.bins, &obs, policy, 0.0, 0.5)
        // lint:allow(no-panic): observation bins come from space.bins binning, in range by construction
        .expect("observation bins from FeatureSpace are in range")
}

/// Shared evaluation: masked BCE over hazard probabilities plus 1-best bin
/// error over uncensored jobs.
fn eval_from_hazards(
    space: &FeatureSpace,
    stream: &TokenStream,
    hazard_of: impl Fn(usize, usize) -> Vec<f64>,
) -> LifetimeEval {
    let j = space.n_bins();
    let mut bce_sum = 0.0;
    let mut bce_count = 0usize;
    let mut errors = 0usize;
    let mut scored = 0usize;
    let eps = 1e-7;
    for (i, step) in stream.jobs.iter().enumerate() {
        let hazard = hazard_of(i, j);
        // BCE over the masked outputs (§2.3.2).
        let upto = if step.censored {
            step.bin
        } else {
            step.bin + 1
        };
        for b in 0..upto {
            let y = if !step.censored && b == step.bin {
                1.0
            } else {
                0.0
            };
            let h = clamp_prob(hazard[b], eps);
            bce_sum -= y * h.ln() + (1.0 - y) * (1.0 - h).ln();
            bce_count += 1;
        }
        // 1-best over uncensored jobs.
        if !step.censored {
            let pmf = hazard_to_pmf(&hazard);
            scored += 1;
            if pmf_argmax(&pmf) != step.bin {
                errors += 1;
            }
        }
    }
    LifetimeEval {
        bce: Some(bce_sum / bce_count.max(1) as f64),
        one_best_err: errors as f64 / scored.max(1) as f64,
        scored_jobs: scored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use survival::LifetimeBins;
    use trace::period::TemporalFeaturesSpec;
    use trace::{FlavorCatalog, FlavorId, Job, Trace, UserId};

    fn bins() -> LifetimeBins {
        // [0, 600), [600, 3600), [3600, 86400), [86400, inf).
        LifetimeBins::from_uppers(vec![600.0, 3600.0, 86_400.0])
    }

    fn space() -> FeatureSpace {
        FeatureSpace::new(16, bins(), TemporalFeaturesSpec::new(2))
    }

    /// A trace where lifetime depends deterministically on flavor *and*
    /// batches alternate lifetimes (correlation an LSTM can learn).
    fn structured_trace(periods: u64) -> Trace {
        let mut jobs = Vec::new();
        for p in 0..periods {
            // Batch of 3: flavor p%2, lifetime bin = flavor-dependent.
            let flavor = FlavorId((p % 2) as u16);
            let life = if p % 2 == 0 { 300 } else { 7200 }; // bin 0 vs bin 2
            for _ in 0..3 {
                jobs.push(Job {
                    start: p * 300,
                    end: Some(p * 300 + life),
                    flavor,
                    user: UserId(0),
                });
            }
        }
        Trace::new(jobs, FlavorCatalog::azure16())
    }

    fn stream(periods: u64) -> TokenStream {
        TokenStream::from_trace(
            &structured_trace(periods),
            &bins(),
            periods * 300 + 1_000_000,
        )
    }

    #[test]
    fn sharded_training_bit_identical_across_thread_counts() {
        let train = stream(120);
        let mut cfg = TrainConfig::tiny();
        cfg.epochs = 2;
        let fit_with = |par: Parallelism, head: LifetimeHead| {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5);
            let mut tr = LifetimeTrainer::new(&train, space(), cfg, head, &mut rng);
            tr.set_parallelism(par);
            for _ in 0..cfg.epochs {
                tr.run_epoch(&train, 1.0, &mut rng, &NullRecorder, &mut NoHooks)
                    .unwrap();
            }
            tr
        };
        for head in [LifetimeHead::Hazard, LifetimeHead::Pmf] {
            let mut serial = fit_with(Parallelism::with_threads(1, 2), head);
            let mut multi = fit_with(Parallelism::with_threads(4, 2), head);
            assert_eq!(serial.train_losses, multi.train_losses);
            for (a, b) in serial
                .net
                .params_mut()
                .iter()
                .zip(multi.net.params_mut().iter())
            {
                for (x, y) in a.value.as_slice().iter().zip(b.value.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn lstm_beats_km_baselines_on_structured_data() {
        let train = stream(300);
        let test = stream(80);
        let sp = space();
        let mut cfg = TrainConfig::tiny();
        cfg.epochs = 30;
        let model = LifetimeModel::fit(&train, sp.clone(), cfg);
        let lstm = model.evaluate(&test);
        let overall = LifetimeBaseline::overall_km(&train, &sp, CensoringPolicy::CensoringAware)
            .evaluate(&test, &sp);
        let coin = LifetimeBaseline::CoinFlip.evaluate(&test, &sp);
        let lstm_bce = lstm.bce.unwrap();
        assert!(
            lstm_bce < overall.bce.unwrap(),
            "lstm {lstm_bce} vs overall KM {:?}",
            overall.bce
        );
        assert!(overall.bce.unwrap() < coin.bce.unwrap());
        // Lifetime is deterministic given flavor here; LSTM should nail it.
        assert!(lstm.one_best_err < 0.2, "err {}", lstm.one_best_err);
    }

    #[test]
    fn per_flavor_km_beats_overall_when_flavors_differ() {
        let train = stream(200);
        let test = stream(50);
        let sp = space();
        let overall = LifetimeBaseline::overall_km(&train, &sp, CensoringPolicy::CensoringAware)
            .evaluate(&test, &sp);
        let per = LifetimeBaseline::per_flavor_km(&train, &sp, CensoringPolicy::CensoringAware)
            .evaluate(&test, &sp);
        assert!(per.bce.unwrap() < overall.bce.unwrap());
        assert!(per.one_best_err <= overall.one_best_err);
    }

    #[test]
    fn repeat_lifetime_scores_without_bce() {
        let train = stream(100);
        let test = stream(30);
        let sp = space();
        let rep = LifetimeBaseline::repeat_lifetime(&train, &sp, CensoringPolicy::CensoringAware)
            .evaluate(&test, &sp);
        assert!(rep.bce.is_none());
        // Within a batch, lifetimes repeat exactly: only batch-start jobs
        // can miss, so error <= 1/3.
        assert!(rep.one_best_err <= 0.34 + 1e-9, "err {}", rep.one_best_err);
    }

    #[test]
    fn coin_flip_bce_is_ln2() {
        let test = stream(20);
        let sp = space();
        let eval = LifetimeBaseline::CoinFlip.evaluate(&test, &sp);
        assert!((eval.bce.unwrap() - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn training_loss_decreases() {
        let train = stream(200);
        let mut cfg = TrainConfig::tiny();
        cfg.epochs = 4;
        let model = LifetimeModel::fit(&train, space(), cfg);
        assert!(model.train_losses.last().unwrap() < model.train_losses.first().unwrap());
    }

    #[test]
    fn fit_recorded_emits_one_epoch_event_per_epoch() {
        let train = stream(200);
        let mut cfg = TrainConfig::tiny();
        cfg.epochs = 4;
        let rec = obsv::MemoryRecorder::new();
        let model = LifetimeModel::fit_recorded(&train, space(), cfg, &rec);
        let epochs = rec.epochs();
        assert_eq!(epochs.len(), cfg.epochs);
        for (i, e) in epochs.iter().enumerate() {
            assert_eq!(e.stage, "lifetime");
            assert_eq!(e.epoch, i);
            assert!(e.grad_norm_pre_clip > 0.0);
            assert!(e.grad_norm_pre_clip_max >= e.grad_norm_pre_clip - 1e-12);
            assert!(e.tokens > 0);
        }
        for (l, e) in model.train_losses.iter().zip(&epochs) {
            assert!((l - e.mean_loss).abs() < 1e-12);
        }
        assert!(epochs.last().unwrap().mean_loss <= epochs.first().unwrap().mean_loss);
    }

    #[test]
    fn predict_hazards_returns_probabilities() {
        let train = stream(60);
        let model = LifetimeModel::fit(&train, space(), TrainConfig::tiny());
        let hazards = model.predict_hazards(&train);
        assert_eq!(hazards.len(), train.jobs.len());
        for h in &hazards {
            assert_eq!(h.len(), 4);
            assert!(h.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn sampling_generates_valid_bins() {
        let train = stream(100);
        let model = LifetimeModel::fit(&train, space(), TrainConfig::tiny());
        let mut rng = StdRng::seed_from_u64(11);
        let mut gen = model.begin();
        for i in 0..100 {
            let bin = model.sample_step(&mut gen, FlavorId(i % 2), 3, (i % 3) as usize, 5, Some(0), &mut rng);
            assert!(bin < 4);
        }
    }

    #[test]
    fn pmf_head_also_learns_structure() {
        let train = stream(200);
        let test = stream(60);
        let sp = space();
        let mut cfg = TrainConfig::tiny();
        cfg.epochs = 25;
        let pmf = LifetimeModel::fit_with_head(&train, sp.clone(), cfg, LifetimeHead::Pmf);
        assert_eq!(pmf.head(), LifetimeHead::Pmf);
        let eval = pmf.evaluate(&test);
        let coin = LifetimeBaseline::CoinFlip.evaluate(&test, &sp);
        assert!(
            eval.bce.unwrap() < coin.bce.unwrap(),
            "pmf head failed to learn"
        );
        // Hazards produced by the PMF head are still valid probabilities.
        let hz = pmf.predict_hazards(&test);
        assert!(hz.iter().flatten().all(|&h| (0.0..=1.0).contains(&h)));
    }

    #[test]
    fn censored_jobs_are_excluded_from_one_best() {
        // All jobs censored: nothing scored for 1-best.
        let jobs = vec![
            Job {
                start: 0,
                end: None,
                flavor: FlavorId(0),
                user: UserId(0),
            },
            Job {
                start: 0,
                end: None,
                flavor: FlavorId(0),
                user: UserId(0),
            },
        ];
        let t = Trace::new(jobs, FlavorCatalog::azure16());
        let s = TokenStream::from_trace(&t, &bins(), 10_000);
        let sp = space();
        let eval = LifetimeBaseline::CoinFlip.evaluate(&s, &sp);
        assert_eq!(eval.scored_jobs, 0);
        // Censored jobs still contribute survival BCE terms.
        assert!(eval.bce.unwrap() > 0.0);
    }
}
