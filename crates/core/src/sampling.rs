//! Conversion of sampled lifetime bins to concrete job records (§2.4).

use rand::Rng;
use survival::interp::sample_duration_in_bin;
use survival::{Interpolation, LifetimeBins};
use trace::period::PERIOD_SECS;

/// Default effective upper edge for the open final bin when converting bins
/// to durations: 40 days (the final bin starts at 20 days; uncensored
/// lifetimes virtually never exceed 20 days in either cloud, §4.2).
pub const DEFAULT_TAIL_HORIZON: f64 = 40.0 * 86_400.0;

/// Samples a concrete duration (seconds, quantized to 5-minute periods,
/// minimum one period) for a lifetime bin.
///
/// Under CDI the duration is uniform within the bin; under Stepped it is the
/// bin's upper boundary (§2.4, Table 4).
pub fn sample_quantized_duration(
    bins: &LifetimeBins,
    bin: usize,
    interp: Interpolation,
    tail_horizon: f64,
    rng: &mut impl Rng,
) -> u64 {
    let d = sample_duration_in_bin(bins, bin, interp, tail_horizon, rng);
    // lint:allow(lossy-cast): sampled duration is finite and non-negative by construction
    let periods = (d / PERIOD_SECS as f64).round() as u64;
    periods.max(1) * PERIOD_SECS
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn durations_quantized_and_positive() {
        let bins = LifetimeBins::paper_47();
        let mut rng = StdRng::seed_from_u64(1);
        for bin in [0, 5, 20, 46] {
            for _ in 0..50 {
                let d = sample_quantized_duration(
                    &bins,
                    bin,
                    Interpolation::Cdi,
                    DEFAULT_TAIL_HORIZON,
                    &mut rng,
                );
                assert!(d >= PERIOD_SECS);
                assert_eq!(d % PERIOD_SECS, 0);
            }
        }
    }

    #[test]
    fn durations_track_bin_scale() {
        let bins = LifetimeBins::paper_47();
        let mut rng = StdRng::seed_from_u64(2);
        let avg = |bin: usize, rng: &mut StdRng| -> f64 {
            (0..200)
                .map(|_| {
                    sample_quantized_duration(
                        &bins,
                        bin,
                        Interpolation::Cdi,
                        DEFAULT_TAIL_HORIZON,
                        rng,
                    ) as f64
                })
                .sum::<f64>()
                / 200.0
        };
        let short = avg(0, &mut rng);
        let long = avg(40, &mut rng);
        assert!(long > short * 10.0, "{short} vs {long}");
    }

    #[test]
    fn stepped_gives_bin_upper_boundary() {
        let bins = LifetimeBins::paper_47();
        let mut rng = StdRng::seed_from_u64(3);
        let d = sample_quantized_duration(
            &bins,
            0,
            Interpolation::Stepped,
            DEFAULT_TAIL_HORIZON,
            &mut rng,
        );
        assert_eq!(d, PERIOD_SECS); // first bin's upper edge is 5 min
    }
}
