//! The end-to-end three-stage trace generator (§2.4).

use crate::arrivals::BatchArrivalModel;
use crate::flavors::FlavorModel;
use crate::lifetimes::LifetimeModel;
use crate::sampling::{sample_quantized_duration, DEFAULT_TAIL_HORIZON};
use obsv::{Event, GenEvent, NullRecorder, Recorder};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use survival::Interpolation;
use trace::period::{period_start, PERIODS_PER_DAY, PERIOD_SECS};
use trace::{FlavorCatalog, FlavorId, Job, Trace, UserId};

/// Knobs for end-to-end generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Interpolation used to convert bins to durations.
    pub interp: Interpolation,
    /// Effective upper edge of the open final bin, seconds.
    pub tail_horizon: f64,
    /// Arrival-rate multiplier (the 10× stress-test knob, §6.2).
    pub scale: f64,
    /// Sample one DOH day per generated trace (`true`, default — keeps a
    /// whole sampled future internally coherent) or per period (`false`).
    pub doh_per_trace: bool,
    /// Hard cap on jobs generated per period (guards against a runaway
    /// flavor model that stops emitting EOB tokens).
    pub max_jobs_per_period: usize,
    /// What-if multiplier on the EOB token probability (footnote 5):
    /// `> 1` shrinks batches, `< 1` grows them. `1.0` is faithful sampling.
    pub eob_scale: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            interp: Interpolation::Cdi,
            tail_horizon: DEFAULT_TAIL_HORIZON,
            scale: 1.0,
            doh_per_trace: true,
            max_jobs_per_period: 20_000,
            eob_scale: 1.0,
        }
    }
}

/// The paper's generator: batch arrivals → flavor LSTM → lifetime LSTM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceGenerator {
    /// Stage 1.
    pub arrivals: BatchArrivalModel,
    /// Stage 2.
    pub flavors: FlavorModel,
    /// Stage 3.
    pub lifetimes: LifetimeModel,
    /// Generation knobs.
    pub config: GeneratorConfig,
}

impl TraceGenerator {
    /// Generates one sampled trace covering periods
    /// `[first_period, first_period + n_periods)`.
    ///
    /// Jobs carry synthetic user ids (one per generated batch — the paper
    /// does not generate real user ids, §2). LSTM state persists across
    /// periods within one call, letting momentum carry over period
    /// boundaries.
    pub fn generate(
        &self,
        first_period: u64,
        n_periods: u64,
        catalog: &FlavorCatalog,
        rng: &mut impl Rng,
    ) -> Trace {
        self.generate_recorded(first_period, n_periods, catalog, rng, &NullRecorder)
    }

    /// [`TraceGenerator::generate`] with telemetry: emits one
    /// [`GenEvent`] per simulated day covered, carrying batches/jobs
    /// emitted, flavor tokens sampled, and wall-clock throughput.
    pub fn generate_recorded(
        &self,
        first_period: u64,
        n_periods: u64,
        catalog: &FlavorCatalog,
        rng: &mut impl Rng,
        rec: &dyn Recorder,
    ) -> Trace {
        let k = self.flavors.space().n_flavors;
        assert_eq!(k, catalog.len(), "catalog size mismatch");
        let bins = &self.lifetimes.space().bins;

        let trace_doh = self.arrivals.sample_doh_day(rng);
        let mut flavor_state = self.flavors.begin();
        let mut lifetime_state = self.lifetimes.begin();
        let mut jobs: Vec<Job> = Vec::new();
        let mut next_user = 0u32;
        let mut day = DayStats::new(first_period / PERIODS_PER_DAY);

        for p in first_period..first_period + n_periods {
            let d = p / PERIODS_PER_DAY;
            if d != day.day {
                day.roll(rec, d);
            }
            day.periods += 1;
            let doh = if self.config.doh_per_trace {
                trace_doh
            } else {
                self.arrivals.sample_doh_day(rng)
            };
            let n_batches = self
                .arrivals
                .sample_count_with_day(p, doh, self.config.scale, rng);
            if n_batches == 0 {
                continue;
            }

            // Stage 2: flavors until n_batches EOB tokens (§2.4).
            let mut batches: Vec<Vec<FlavorId>> = vec![Vec::new()];
            let mut eobs = 0u64;
            let mut emitted = 0usize;
            // Step budget guards against a degenerate model that emits EOB
            // for an empty batch forever (empty batches are re-rolled and
            // advance no counter).
            let mut steps_left = self.config.max_jobs_per_period * 2 + 1000;
            while eobs < n_batches {
                steps_left -= 1;
                if steps_left == 0 {
                    break;
                }
                let tok = self.flavors.sample_step_scaled(
                    &mut flavor_state,
                    p,
                    Some(doh),
                    self.config.eob_scale,
                    rng,
                );
                day.tokens += 1;
                if tok == k {
                    // EOB: close the current batch if non-empty; empty
                    // batches are re-rolled (a batch has >= 1 job by
                    // definition).
                    // lint:allow(no-panic): batches starts with one Vec and is never drained
                    if !batches.last().expect("non-empty").is_empty() {
                        eobs += 1;
                        if eobs < n_batches {
                            batches.push(Vec::new());
                        }
                    }
                } else {
                    batches
                        .last_mut()
                        // lint:allow(no-panic): batches starts with one Vec and is never drained
                        .expect("non-empty")
                        .push(FlavorId(tok as u16));
                    emitted += 1;
                    if emitted >= self.config.max_jobs_per_period {
                        break;
                    }
                }
            }
            if batches.last().map_or(false, Vec::is_empty) {
                batches.pop();
            }

            // Stage 3: lifetimes over the full resource sequence.
            let start = period_start(p);
            day.batches += batches.len() as u64;
            for batch in &batches {
                day.jobs += batch.len() as u64;
                let user = UserId(next_user);
                next_user = next_user.wrapping_add(1);
                for (pos, &flavor) in batch.iter().enumerate() {
                    let bin = self.lifetimes.sample_step(
                        &mut lifetime_state,
                        flavor,
                        batch.len(),
                        pos,
                        p,
                        Some(doh),
                        rng,
                    );
                    let duration = sample_quantized_duration(
                        bins,
                        bin,
                        self.config.interp,
                        self.config.tail_horizon,
                        rng,
                    );
                    jobs.push(Job {
                        start,
                        end: Some(start + duration),
                        flavor,
                        user,
                    });
                }
            }
        }
        day.flush(rec);
        Trace::new(jobs, catalog.clone())
    }

    /// Generates a trace and right-censors it at the end of the generated
    /// window (so generated and real test traces are comparable).
    pub fn generate_censored(
        &self,
        first_period: u64,
        n_periods: u64,
        catalog: &FlavorCatalog,
        rng: &mut impl Rng,
    ) -> Trace {
        let t = self.generate(first_period, n_periods, catalog, rng);
        let horizon = period_start(first_period + n_periods);
        let jobs = t
            .jobs
            .into_iter()
            .map(|mut j| {
                if j.end.map_or(false, |e| e > horizon) {
                    j.end = None;
                }
                j
            })
            .collect();
        Trace::new(jobs, t.catalog)
    }
}

/// Per-simulated-day accounting behind [`GenEvent`] telemetry.
struct DayStats {
    day: u64,
    started: Instant,
    periods: u64,
    batches: u64,
    jobs: u64,
    tokens: u64,
}

impl DayStats {
    fn new(day: u64) -> Self {
        Self {
            day,
            started: Instant::now(),
            periods: 0,
            batches: 0,
            jobs: 0,
            tokens: 0,
        }
    }

    /// Emits the accumulated day (no event for an empty accumulator).
    fn flush(&self, rec: &dyn Recorder) {
        if self.periods == 0 {
            return;
        }
        let wall_ms = self.started.elapsed().as_secs_f64() * 1000.0;
        let secs = wall_ms / 1000.0;
        rec.record(Event::Gen(GenEvent {
            day: self.day,
            periods: self.periods,
            batches: self.batches,
            jobs: self.jobs,
            tokens: self.tokens,
            wall_ms,
            tokens_per_sec: if secs > 0.0 {
                self.tokens as f64 / secs
            } else {
                0.0
            },
        }));
    }

    /// Flushes the current day and starts accumulating `day`.
    fn roll(&mut self, rec: &dyn Recorder, day: u64) {
        self.flush(rec);
        *self = Self::new(day);
    }
}

/// Spreads quantized start/end times across their periods for applications
/// that need concrete orderings (scheduling, §2.4): arrivals are placed in
/// generative order, evenly spaced within the period; departures get a
/// uniform random offset.
pub fn spread_intra_period(trace: &Trace, rng: &mut impl Rng) -> Trace {
    // Count arrivals per period to space them evenly.
    let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for j in &trace.jobs {
        *counts.entry(j.start / PERIOD_SECS).or_insert(0) += 1;
    }
    let mut seen: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let jobs: Vec<Job> = trace
        .jobs
        .iter()
        .map(|j| {
            let p = j.start / PERIOD_SECS;
            let n = counts[&p];
            let i = seen.entry(p).or_insert(0);
            let offset = *i * PERIOD_SECS / n.max(1);
            *i += 1;
            let start = j.start + offset;
            let end = j.end.map(|e| {
                let jittered = e + rng.gen_range(0..PERIOD_SECS);
                jittered.max(start + 1)
            });
            Job { start, end, ..*j }
        })
        .collect();
    let mut jobs = jobs;
    jobs.sort_by_key(|j| j.start);
    Trace::new(jobs, trace.catalog.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalTarget;
    use crate::features::{FeatureSpace, TokenStream};
    use crate::train::TrainConfig;
    use glm::{DohStrategy, ElasticNet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use survival::LifetimeBins;
    use trace::period::TemporalFeaturesSpec;

    fn bins() -> LifetimeBins {
        LifetimeBins::from_uppers(vec![600.0, 3600.0, 86_400.0])
    }

    fn training_trace(periods: u64) -> Trace {
        let mut jobs = Vec::new();
        for p in 0..periods {
            let flavor = FlavorId((p % 3) as u16);
            let life = 300 + (p % 3) * 3000;
            for u in 0..2 {
                jobs.push(Job {
                    start: p * 300,
                    end: Some(p * 300 + life),
                    flavor,
                    user: UserId(u),
                });
            }
        }
        Trace::new(jobs, FlavorCatalog::azure16())
    }

    fn build_generator(periods: u64) -> (TraceGenerator, FlavorCatalog) {
        let train = training_trace(periods);
        let secs = periods * 300;
        let temporal = TemporalFeaturesSpec::new(((secs / 86_400) + 1) as usize);
        let space = FeatureSpace::new(16, bins(), temporal);
        let stream = TokenStream::from_trace(&train, &bins(), secs);
        let arrivals = BatchArrivalModel::fit(
            &train,
            secs,
            ArrivalTarget::Batches,
            temporal,
            ElasticNet::ridge(0.1),
            DohStrategy::LastDay,
        )
        .unwrap();
        let mut cfg = TrainConfig::tiny();
        cfg.epochs = 20;
        let flavors = FlavorModel::fit(&stream, space.clone(), cfg);
        let lifetimes = LifetimeModel::fit(&stream, space, cfg);
        let catalog = train.catalog.clone();
        (
            TraceGenerator {
                arrivals,
                flavors,
                lifetimes,
                config: GeneratorConfig::default(),
            },
            catalog,
        )
    }

    #[test]
    fn generates_wellformed_trace() {
        let (g, catalog) = build_generator(300);
        let mut rng = StdRng::seed_from_u64(1);
        let t = g.generate(300, 50, &catalog, &mut rng);
        assert!(!t.is_empty(), "generated nothing");
        for j in &t.jobs {
            assert_eq!(j.start % 300, 0);
            assert!(j.end.unwrap() > j.start);
            assert!((j.start / 300) >= 300 && (j.start / 300) < 350);
        }
    }

    #[test]
    fn generation_volume_tracks_training_rate() {
        // Training had 2 jobs (1 batch... actually 2 users => 2 batches) per
        // period; generated volume should be within a small factor.
        let (g, catalog) = build_generator(300);
        let mut rng = StdRng::seed_from_u64(2);
        let t = g.generate(300, 100, &catalog, &mut rng);
        let jobs_per_period = t.len() as f64 / 100.0;
        assert!(
            jobs_per_period > 0.4 && jobs_per_period < 10.0,
            "jobs/period {jobs_per_period}"
        );
    }

    #[test]
    fn scale_knob_multiplies_volume() {
        let (mut g, catalog) = build_generator(200);
        let mut rng = StdRng::seed_from_u64(3);
        let base = g.generate(200, 50, &catalog, &mut rng).len();
        g.config.scale = 10.0;
        let scaled = g.generate(200, 50, &catalog, &mut rng).len();
        assert!(
            scaled as f64 > base as f64 * 4.0,
            "10x scale: {base} -> {scaled}"
        );
    }

    #[test]
    fn generate_censored_censors_past_horizon() {
        let (g, catalog) = build_generator(200);
        let mut rng = StdRng::seed_from_u64(4);
        let t = g.generate_censored(200, 20, &catalog, &mut rng);
        let horizon = 220 * 300;
        for j in &t.jobs {
            if let Some(e) = j.end {
                assert!(e <= horizon);
            }
        }
    }

    #[test]
    fn spread_intra_period_orders_and_bounds() {
        let (g, catalog) = build_generator(200);
        let mut rng = StdRng::seed_from_u64(5);
        let t = g.generate(200, 20, &catalog, &mut rng);
        let spread = spread_intra_period(&t, &mut rng);
        assert_eq!(spread.len(), t.len());
        for (orig, s) in t.jobs.iter().zip(spread.jobs.iter()) {
            // Starts stay within their original period (jobs sorted though,
            // so compare via period membership of the multiset instead).
            let _ = (orig, s);
        }
        // Every start is within its period and ends exceed starts.
        for j in &spread.jobs {
            assert!(j.end.unwrap_or(u64::MAX) > j.start);
        }
        // Starts are strictly sorted per Trace::new's invariant.
        for w in spread.jobs.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn generate_recorded_emits_per_day_throughput() {
        let (g, catalog) = build_generator(300);
        let rec = obsv::MemoryRecorder::new();
        let mut rng = StdRng::seed_from_u64(6);
        // 300 periods starting mid-day: spans days 1 and 2 (288/day).
        let t = g.generate_recorded(300, 300, &catalog, &mut rng, &rec);
        let gen_events: Vec<obsv::GenEvent> = rec
            .events()
            .into_iter()
            .filter_map(|e| match e {
                obsv::Event::Gen(ev) => Some(ev),
                _ => None,
            })
            .collect();
        assert_eq!(gen_events.len(), 2, "{gen_events:?}");
        assert_eq!(gen_events[0].day, 1);
        assert_eq!(gen_events[1].day, 2);
        assert_eq!(gen_events.iter().map(|e| e.periods).sum::<u64>(), 300);
        let jobs: u64 = gen_events.iter().map(|e| e.jobs).sum();
        assert_eq!(jobs, t.len() as u64);
        // Every job costs at least one flavor token; EOBs add more.
        let tokens: u64 = gen_events.iter().map(|e| e.tokens).sum();
        assert!(tokens >= jobs);
        let batches: u64 = gen_events.iter().map(|e| e.batches).sum();
        assert!(batches > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, catalog) = build_generator(150);
        let a = g.generate(150, 30, &catalog, &mut StdRng::seed_from_u64(9));
        let b = g.generate(150, 30, &catalog, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
