//! The end-to-end three-stage trace generator (§2.4), with graceful
//! degradation: when an LSTM emits non-finite output mid-generation, the
//! generator substitutes the independence baselines of §6 for the affected
//! batch instead of producing NaN-poisoned samples — logged, counted, and
//! bounded by [`GeneratorConfig::max_fallback_batches`].

use crate::arrivals::BatchArrivalModel;
use crate::features::{FeatureSpace, TokenStream};
use crate::flavors::{FlavorBaseline, FlavorModel};
use crate::lifetimes::LifetimeModel;
use crate::sampling::{sample_quantized_duration, DEFAULT_TAIL_HORIZON};
use glm::samplers::sample_categorical;
use linalg::CancelToken;
use obsv::{profile, CounterEvent, Deadline, Event, GenEvent, NullRecorder, Recorder, Stopwatch};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use survival::funcs::sample_hazard_chain;
use survival::{CensoringPolicy, Interpolation, KaplanMeier, Observation};
use trace::period::{period_start, PERIODS_PER_DAY, PERIOD_SECS};
use trace::{FlavorCatalog, FlavorId, Job, Trace, UserId};

/// Knobs for end-to-end generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Interpolation used to convert bins to durations.
    pub interp: Interpolation,
    /// Effective upper edge of the open final bin, seconds.
    pub tail_horizon: f64,
    /// Arrival-rate multiplier (the 10× stress-test knob, §6.2).
    pub scale: f64,
    /// Sample one DOH day per generated trace (`true`, default — keeps a
    /// whole sampled future internally coherent) or per period (`false`).
    pub doh_per_trace: bool,
    /// Hard cap on jobs generated per period (guards against a runaway
    /// flavor model that stops emitting EOB tokens).
    pub max_jobs_per_period: usize,
    /// What-if multiplier on the EOB token probability (footnote 5):
    /// `> 1` shrinks batches, `< 1` grows them. `1.0` is faithful sampling.
    pub eob_scale: f64,
    /// Budget for baseline-fallback batches in [`TraceGenerator::
    /// try_generate_recorded`]: once this many batches have been produced
    /// by the fallback (because an LSTM emitted non-finite output), the
    /// run fails with [`GenerateError::FallbackBudgetExhausted`] rather
    /// than quietly degenerating into a pure baseline trace. Defaults so
    /// bundles serialized before this knob existed still load.
    #[serde(default = "default_max_fallback_batches")]
    pub max_fallback_batches: usize,
}

fn default_max_fallback_batches() -> usize {
    1_000
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            interp: Interpolation::Cdi,
            tail_horizon: DEFAULT_TAIL_HORIZON,
            scale: 1.0,
            doh_per_trace: true,
            max_jobs_per_period: 20_000,
            eob_scale: 1.0,
            max_fallback_batches: default_max_fallback_batches(),
        }
    }
}

/// Why a bounded generation run failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenerateError {
    /// The baseline fallback produced more batches than
    /// [`GeneratorConfig::max_fallback_batches`] allows — the LSTMs are too
    /// unhealthy for the output to still count as a model sample.
    FallbackBudgetExhausted {
        /// The exhausted budget.
        budget: usize,
    },
    /// The wall-clock deadline in [`GenBounds`] expired before generation
    /// finished. Distinct from [`GenerateError::FallbackBudgetExhausted`]:
    /// a timeout says nothing about model health, so callers can retry a
    /// deadline with a fresh allowance but must not retry an exhausted
    /// degradation budget.
    DeadlineExceeded {
        /// The allowance that expired, whole milliseconds.
        budget_ms: u64,
    },
    /// The [`CancelToken`] in [`GenBounds`] fired; the owner no longer
    /// wants the result (client hung up, server draining, watchdog trip).
    Cancelled,
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::FallbackBudgetExhausted { budget } => write!(
                f,
                "baseline fallback exceeded its budget of {budget} batches; \
                 the sequence models are emitting non-finite output"
            ),
            GenerateError::DeadlineExceeded { budget_ms } => write!(
                f,
                "generation deadline of {budget_ms} ms expired before the trace completed"
            ),
            GenerateError::Cancelled => write!(f, "generation was cancelled by its owner"),
        }
    }
}

impl std::error::Error for GenerateError {}

/// Wall-clock and cancellation bounds on a generation run.
///
/// Both limits are *abort-only*: a run that trips either bound returns an
/// error and discards its partial output, it never truncates the trace. A
/// run that finishes inside its bounds is byte-identical to an unbounded
/// run with the same seed, because checking the clock or the flag consumes
/// no randomness.
#[derive(Debug, Clone, Default)]
pub struct GenBounds {
    /// Abort with [`GenerateError::DeadlineExceeded`] once expired.
    pub deadline: Option<Deadline>,
    /// Abort with [`GenerateError::Cancelled`] once fired.
    pub cancel: Option<CancelToken>,
}

impl GenBounds {
    /// No limits: bounded APIs behave exactly like their unbounded twins.
    pub fn none() -> Self {
        Self::default()
    }

    /// Bounds with only a wall-clock deadline.
    pub fn with_deadline(deadline: Deadline) -> Self {
        Self {
            deadline: Some(deadline),
            cancel: None,
        }
    }

    /// Cheap poll, called once per generated period and once per shard.
    /// Cancellation wins over expiry when both have tripped (the owner's
    /// explicit signal is the more specific diagnosis).
    fn check(&self) -> Result<(), GenerateError> {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Err(GenerateError::Cancelled);
            }
        }
        if let Some(d) = &self.deadline {
            if d.expired() {
                return Err(GenerateError::DeadlineExceeded {
                    budget_ms: d.budget_ms() as u64,
                });
            }
        }
        Ok(())
    }
}

/// Independence-baseline samplers (§6 style) the generator degrades to,
/// per batch, when an LSTM emits non-finite output: an empirical
/// batch-size histogram, iid multinomial flavors, and an overall
/// Kaplan–Meier lifetime hazard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenFallback {
    /// Multinomial over flavors (length K, EOB excluded).
    flavor_probs: Vec<f64>,
    /// Batch-size histogram weights (index = size; index 0 unused).
    batch_size_weights: Vec<f64>,
    /// Overall KM hazard per lifetime bin.
    lifetime_hazard: Vec<f64>,
}

impl GenFallback {
    /// Fits the three baseline components from a training stream — the
    /// same estimators the §6 SimpleBatch baseline uses.
    pub fn fit(stream: &TokenStream, space: &FeatureSpace) -> Self {
        let flavor_probs =
            FlavorBaseline::multinomial(stream, space.n_flavors).flavor_only_probs();
        // Batch sizes with add-one smoothing on size 1 so the histogram is
        // never empty/degenerate.
        let max_size = stream
            .jobs
            .iter()
            .map(|j| j.batch_size)
            .max()
            .unwrap_or(1)
            .max(1);
        let mut batch_size_weights = vec![0.0; max_size + 1];
        batch_size_weights[1] = 1.0;
        for j in &stream.jobs {
            if j.pos_in_batch == 0 {
                batch_size_weights[j.batch_size] += 1.0;
            }
        }
        let obs: Vec<Observation> = stream
            .jobs
            .iter()
            .map(|j| Observation {
                bin: j.bin,
                censored: j.censored,
            })
            .collect();
        let lifetime_hazard = KaplanMeier::fit_smoothed(
            &space.bins,
            &obs,
            CensoringPolicy::CensoringAware,
            0.0,
            0.5,
        )
        // lint:allow(no-panic): observation bins come from space.bins binning, in range by construction
        .expect("observation bins from FeatureSpace are in range")
        .hazard()
        .to_vec();
        Self {
            flavor_probs,
            batch_size_weights,
            lifetime_hazard,
        }
    }

    /// A last-resort fallback when no training stream is available:
    /// uniform flavors, single-job batches, coin-flip hazards.
    pub fn uniform(n_flavors: usize, n_bins: usize) -> Self {
        Self {
            flavor_probs: vec![1.0 / n_flavors.max(1) as f64; n_flavors.max(1)],
            batch_size_weights: vec![0.0, 1.0],
            lifetime_hazard: vec![0.5; n_bins.max(1)],
        }
    }

    fn sample_flavor(&self, rng: &mut impl Rng) -> FlavorId {
        FlavorId(sample_categorical(&self.flavor_probs, rng) as u16)
    }

    fn sample_batch_size(&self, rng: &mut impl Rng) -> usize {
        sample_categorical(&self.batch_size_weights, rng).max(1)
    }

    fn sample_bin(&self, rng: &mut impl Rng) -> usize {
        sample_hazard_chain(&self.lifetime_hazard, rng)
    }
}

/// The paper's generator: batch arrivals → flavor LSTM → lifetime LSTM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceGenerator {
    /// Stage 1.
    pub arrivals: BatchArrivalModel,
    /// Stage 2.
    pub flavors: FlavorModel,
    /// Stage 3.
    pub lifetimes: LifetimeModel,
    /// Generation knobs.
    pub config: GeneratorConfig,
    /// Baseline samplers substituted per batch when an LSTM emits
    /// non-finite output. `None` disables degradation: a sick model then
    /// produces whatever the infallible samplers produce (pre-existing
    /// behavior). Fit one with [`GenFallback::fit`].
    #[serde(default)]
    pub fallback: Option<GenFallback>,
}

impl TraceGenerator {
    /// Generates one sampled trace covering periods
    /// `[first_period, first_period + n_periods)`.
    ///
    /// Jobs carry synthetic user ids (one per generated batch — the paper
    /// does not generate real user ids, §2). LSTM state persists across
    /// periods within one call, letting momentum carry over period
    /// boundaries.
    // lint:allow(memory-contract): returns one in-memory Trace by design, bounded by n_periods x max_jobs_per_period jobs for the window the caller picks; streaming shard output is ROADMAP item 2
    pub fn generate(
        &self,
        first_period: u64,
        n_periods: u64,
        catalog: &FlavorCatalog,
        rng: &mut impl Rng,
    ) -> Trace {
        self.generate_recorded(first_period, n_periods, catalog, rng, &NullRecorder)
    }

    /// [`TraceGenerator::generate`] with telemetry: emits one
    /// [`GenEvent`] per simulated day covered, carrying batches/jobs
    /// emitted, flavor tokens sampled, and wall-clock throughput.
    ///
    /// Degradation is unbounded here (the budget is effectively infinite);
    /// use [`TraceGenerator::try_generate_recorded`] to enforce
    /// [`GeneratorConfig::max_fallback_batches`].
    // lint:allow(memory-contract): returns one in-memory Trace by design, bounded by n_periods x max_jobs_per_period jobs for the window the caller picks; streaming shard output is ROADMAP item 2
    pub fn generate_recorded(
        &self,
        first_period: u64,
        n_periods: u64,
        catalog: &FlavorCatalog,
        rng: &mut impl Rng,
        rec: &dyn Recorder,
    ) -> Trace {
        let bounds = GenBounds::none();
        match self.generate_impl(first_period, n_periods, catalog, rng, rec, usize::MAX, &bounds) {
            Ok(t) => t,
            // lint:allow(no-panic): the only errors are budget/deadline/cancel trips, impossible with no bounds
            Err(e) => unreachable!("unbounded generation cannot fail: {e}"),
        }
    }

    /// [`TraceGenerator::generate_recorded`] with the degradation budget
    /// enforced: at most [`GeneratorConfig::max_fallback_batches`] batches
    /// may come from the baseline fallback.
    ///
    /// # Errors
    ///
    /// [`GenerateError::FallbackBudgetExhausted`] when the LSTMs emit
    /// non-finite output so often that the budget runs out — the trace so
    /// far is discarded because it would no longer be a model sample.
    // lint:allow(memory-contract): returns one in-memory Trace by design, bounded by n_periods x max_jobs_per_period jobs for the window the caller picks; streaming shard output is ROADMAP item 2
    pub fn try_generate_recorded(
        &self,
        first_period: u64,
        n_periods: u64,
        catalog: &FlavorCatalog,
        rng: &mut impl Rng,
        rec: &dyn Recorder,
    ) -> Result<Trace, GenerateError> {
        self.try_generate_bounded(
            first_period,
            n_periods,
            catalog,
            rng,
            rec,
            &GenBounds::none(),
        )
    }

    /// [`TraceGenerator::try_generate_recorded`] with wall-clock and
    /// cancellation bounds: the run additionally aborts with
    /// [`GenerateError::DeadlineExceeded`] or [`GenerateError::Cancelled`]
    /// when the corresponding limit in `bounds` trips (checked once per
    /// generated period).
    ///
    /// # Errors
    ///
    /// [`GenerateError::FallbackBudgetExhausted`],
    /// [`GenerateError::DeadlineExceeded`], or [`GenerateError::Cancelled`].
    // lint:allow(memory-contract): returns one in-memory Trace by design, bounded by n_periods x max_jobs_per_period jobs for the window the caller picks; streaming shard output is ROADMAP item 2
    pub fn try_generate_bounded(
        &self,
        first_period: u64,
        n_periods: u64,
        catalog: &FlavorCatalog,
        rng: &mut impl Rng,
        rec: &dyn Recorder,
        bounds: &GenBounds,
    ) -> Result<Trace, GenerateError> {
        self.generate_impl(
            first_period,
            n_periods,
            catalog,
            rng,
            rec,
            self.config.max_fallback_batches,
            bounds,
        )
    }

    /// Deterministic data-parallel generation; see
    /// [`TraceGenerator::try_generate_par_recorded`] for the contract.
    /// Degradation is unbounded, mirroring [`TraceGenerator::generate`].
    // lint:allow(memory-contract): concatenates per-shard job vectors into one in-memory Trace, bounded by n_periods x max_jobs_per_period jobs total across shards; streaming shard output is ROADMAP item 2
    pub fn generate_par(
        &self,
        first_period: u64,
        n_periods: u64,
        catalog: &FlavorCatalog,
        seed: u64,
        threads: usize,
    ) -> Trace {
        let bounds = GenBounds::none();
        match self.generate_par_impl(
            first_period,
            n_periods,
            catalog,
            seed,
            threads,
            &NullRecorder,
            usize::MAX,
            &bounds,
        ) {
            Ok(t) => t,
            // lint:allow(no-panic): the only errors are budget/deadline/cancel trips, impossible with no bounds
            Err(e) => unreachable!("unbounded generation cannot fail: {e}"),
        }
    }

    /// Deterministic data-parallel generation with telemetry and the
    /// degradation budget enforced per shard.
    ///
    /// The horizon is cut into fixed one-day shards ([`PERIODS_PER_DAY`]
    /// periods); shard `i` is generated from its own RNG stream derived
    /// as `splitmix64(seed, i)` with fresh LSTM state, and the shards are
    /// stitched back in time order with batch user ids renumbered in
    /// shard order. The shard layout and every shard's random stream are
    /// pure functions of `(seed, first_period, n_periods)` — the thread
    /// count only decides how many shards run concurrently — so the
    /// output trace is byte-identical for any `threads`.
    ///
    /// Within one shard the LSTM state carries across periods exactly as
    /// in the sequential path; it resets at day boundaries (where the
    /// sequential path's state would carry over), which is the price of
    /// embarrassing parallelism and is documented in DESIGN.md.
    ///
    /// When [`GeneratorConfig::doh_per_trace`] is set, one
    /// day-of-history is drawn from a dedicated stream of `seed` and
    /// shared by every shard.
    ///
    /// # Errors
    ///
    /// [`GenerateError::FallbackBudgetExhausted`] if any shard exceeds
    /// [`GeneratorConfig::max_fallback_batches`] fallback batches; shard
    /// errors surface in shard order, so failures are as deterministic
    /// as successes.
    // lint:allow(memory-contract): concatenates per-shard job vectors into one in-memory Trace, bounded by n_periods x max_jobs_per_period jobs total across shards; streaming shard output is ROADMAP item 2
    pub fn try_generate_par_recorded(
        &self,
        first_period: u64,
        n_periods: u64,
        catalog: &FlavorCatalog,
        seed: u64,
        threads: usize,
        rec: &dyn Recorder,
    ) -> Result<Trace, GenerateError> {
        self.try_generate_par_bounded(
            first_period,
            n_periods,
            catalog,
            seed,
            threads,
            rec,
            &GenBounds::none(),
        )
    }

    /// [`TraceGenerator::try_generate_par_recorded`] with wall-clock and
    /// cancellation bounds, checked at every shard start and once per
    /// generated period inside each shard. A run that trips a bound
    /// discards all partial output; a run that finishes inside its bounds
    /// is byte-identical to the unbounded run for the same seed.
    ///
    /// # Errors
    ///
    /// [`GenerateError::FallbackBudgetExhausted`],
    /// [`GenerateError::DeadlineExceeded`], or [`GenerateError::Cancelled`];
    /// when shards fail differently, the winner is resolved in shard order
    /// so failures are as deterministic as the timing allows.
    #[allow(clippy::too_many_arguments)]
    // lint:allow(memory-contract): concatenates per-shard job vectors into one in-memory Trace, bounded by n_periods x max_jobs_per_period jobs total across shards; streaming shard output is ROADMAP item 2
    pub fn try_generate_par_bounded(
        &self,
        first_period: u64,
        n_periods: u64,
        catalog: &FlavorCatalog,
        seed: u64,
        threads: usize,
        rec: &dyn Recorder,
        bounds: &GenBounds,
    ) -> Result<Trace, GenerateError> {
        self.generate_par_impl(
            first_period,
            n_periods,
            catalog,
            seed,
            threads,
            rec,
            self.config.max_fallback_batches,
            bounds,
        )
    }

    #[allow(clippy::too_many_arguments)]
    // lint:allow(memory-contract): the shard-join point: extends one jobs Vec with each shard's output, bounded by n_periods x max_jobs_per_period jobs total; streaming shard output is ROADMAP item 2
    fn generate_par_impl(
        &self,
        first_period: u64,
        n_periods: u64,
        catalog: &FlavorCatalog,
        seed: u64,
        threads: usize,
        rec: &dyn Recorder,
        budget: usize,
        bounds: &GenBounds,
    ) -> Result<Trace, GenerateError> {
        use obsv::MemoryRecorder;
        let pool = linalg::WorkerPool::new(threads);
        // One shard per simulated day. The layout is a function of the
        // requested span only — never of the thread count.
        let shards: Vec<(u64, u64)> = (0..n_periods)
            .step_by(PERIODS_PER_DAY as usize)
            .map(|off| {
                let p0 = first_period + off;
                (p0, (n_periods - off).min(PERIODS_PER_DAY))
            })
            .collect();
        let doh_override = if self.config.doh_per_trace {
            let mut doh_rng = rand::rngs::StdRng::seed_from_u64(splitmix64(seed, u64::MAX));
            Some(self.arrivals.sample_doh_day(&mut doh_rng))
        } else {
            None
        };
        let _prof = profile::span("generate");
        let started = Stopwatch::new();
        let results = pool.map(&shards, |i, &(p0, n)| {
            let shard_start = Stopwatch::new();
            let mut rng = rand::rngs::StdRng::seed_from_u64(splitmix64(seed, i as u64));
            let local = MemoryRecorder::new();
            // Bound check at shard start so a tripped bound skips whole
            // shards instead of generating work nobody will collect.
            let out = bounds.check().and_then(|()| {
                self.generate_span(
                    p0,
                    n,
                    catalog,
                    &mut rng,
                    &local,
                    budget,
                    doh_override,
                    bounds,
                )
            });
            let wall = shard_start.elapsed_ms();
            (out, local, wall)
        });
        let mut jobs: Vec<Job> = Vec::new();
        let mut user_offset = 0u32;
        let mut first_err = None;
        for (i, (out, local, wall)) in results.into_iter().enumerate() {
            match out {
                Ok((mut shard_jobs, users)) => {
                    if first_err.is_none() {
                        for j in &mut shard_jobs {
                            j.user = UserId(j.user.0.wrapping_add(user_offset));
                        }
                        user_offset = user_offset.wrapping_add(users);
                        jobs.extend(shard_jobs);
                        // Replay shard telemetry in shard order so the
                        // event stream is as deterministic as the trace.
                        for e in local.events() {
                            rec.record(e);
                        }
                        rec.record(Event::Span(obsv::SpanEvent {
                            name: format!("gen.shard.{i}"),
                            wall_ms: wall,
                        }));
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let secs = (started.elapsed_ms() / 1000.0).max(1e-9);
        rec.record(Event::Gauge(obsv::GaugeEvent {
            name: "gen.jobs_per_sec".to_string(),
            value: jobs.len() as f64 / secs,
        }));
        Ok(Trace::new(jobs, catalog.clone()))
    }

    #[allow(clippy::too_many_arguments)]
    // lint:allow(memory-contract): accumulates the window's jobs before Trace assembly, bounded by n_periods x max_jobs_per_period jobs; streaming shard output is ROADMAP item 2
    fn generate_impl(
        &self,
        first_period: u64,
        n_periods: u64,
        catalog: &FlavorCatalog,
        rng: &mut impl Rng,
        rec: &dyn Recorder,
        budget: usize,
        bounds: &GenBounds,
    ) -> Result<Trace, GenerateError> {
        let _prof = profile::span("generate");
        let (jobs, _users) =
            self.generate_span(first_period, n_periods, catalog, rng, rec, budget, None, bounds)?;
        Ok(Trace::new(jobs, catalog.clone()))
    }

    /// One contiguous span of generation: the sequential sampling loop,
    /// parameterized so the parallel runtime can run it per shard.
    /// Returns the jobs plus the number of synthetic users consumed (for
    /// deterministic renumbering when shards are stitched).
    ///
    /// `doh_override` forces the trace-level day-of-history instead of
    /// drawing it from `rng` (shards must agree on it when
    /// [`GeneratorConfig::doh_per_trace`] is set); `None` preserves the
    /// sequential path's draw order exactly.
    #[allow(clippy::too_many_arguments)]
    // lint:allow(memory-contract): the allocation site itself: pushes one Job per emission into the span's jobs Vec, capped at max_jobs_per_period per period x n_periods periods; streaming shard output is ROADMAP item 2
    fn generate_span(
        &self,
        first_period: u64,
        n_periods: u64,
        catalog: &FlavorCatalog,
        rng: &mut impl Rng,
        rec: &dyn Recorder,
        budget: usize,
        doh_override: Option<u32>,
        bounds: &GenBounds,
    ) -> Result<(Vec<Job>, u32), GenerateError> {
        let k = self.flavors.space().n_flavors;
        assert_eq!(k, catalog.len(), "catalog size mismatch");
        let bins = &self.lifetimes.space().bins;
        // Degradation always has samplers available: a fitted fallback when
        // the bundle carries one, the uniform emergency baseline otherwise.
        let emergency;
        let fb = match &self.fallback {
            Some(f) => f,
            None => {
                emergency = GenFallback::uniform(k, bins.len());
                &emergency
            }
        };
        let mut fallback_batches = 0usize;
        let mut fallback_jobs = 0u64;

        let trace_doh = match doh_override {
            Some(d) => d,
            None => self.arrivals.sample_doh_day(rng),
        };
        let mut flavor_state = self.flavors.begin();
        let mut lifetime_state = self.lifetimes.begin();
        let mut jobs: Vec<Job> = Vec::new();
        let mut next_user = 0u32;
        let mut day = DayStats::new(first_period / PERIODS_PER_DAY);

        for p in first_period..first_period + n_periods {
            // Once per period: cheap enough to be invisible, frequent
            // enough that a deadline or cancel trips within milliseconds.
            bounds.check()?;
            let d = p / PERIODS_PER_DAY;
            if d != day.day {
                day.roll(rec, d);
            }
            day.periods += 1;
            let doh = if self.config.doh_per_trace {
                trace_doh
            } else {
                self.arrivals.sample_doh_day(rng)
            };
            let n_batches = self
                .arrivals
                .sample_count_with_day(p, doh, self.config.scale, rng);
            if n_batches == 0 {
                continue;
            }

            // Stage 2: flavors until n_batches EOB tokens (§2.4).
            let mut batches: Vec<Vec<FlavorId>> = vec![Vec::new()];
            let mut eobs = 0u64;
            let mut emitted = 0usize;
            // Step budget guards against a degenerate model that emits EOB
            // for an empty batch forever (empty batches are re-rolled and
            // advance no counter).
            let mut steps_left = self.config.max_jobs_per_period * 2 + 1000;
            while eobs < n_batches {
                steps_left -= 1;
                if steps_left == 0 {
                    break;
                }
                let sampled = self.flavors.try_sample_step_scaled(
                    &mut flavor_state,
                    p,
                    Some(doh),
                    self.config.eob_scale,
                    rng,
                );
                let tok = match sampled {
                    Some(tok) => tok,
                    None => {
                        // Flavor LSTM emitted non-finite logits: close the
                        // in-progress batch (its jobs are model output),
                        // finish the period's remaining batches from the
                        // baseline, and reset the poisoned LSTM state.
                        match batches.last() {
                            Some(last) if last.is_empty() => {
                                batches.pop();
                            }
                            Some(_) => eobs += 1,
                            None => {}
                        }
                        while eobs < n_batches && emitted < self.config.max_jobs_per_period {
                            if fallback_batches >= budget {
                                return Err(GenerateError::FallbackBudgetExhausted { budget });
                            }
                            fallback_batches += 1;
                            let size = fb
                                .sample_batch_size(rng)
                                .min(self.config.max_jobs_per_period - emitted);
                            let batch: Vec<FlavorId> =
                                (0..size).map(|_| fb.sample_flavor(rng)).collect();
                            emitted += batch.len();
                            fallback_jobs += batch.len() as u64;
                            batches.push(batch);
                            eobs += 1;
                        }
                        flavor_state = self.flavors.begin();
                        break;
                    }
                };
                day.tokens += 1;
                if tok == k {
                    // EOB: close the current batch if non-empty; empty
                    // batches are re-rolled (a batch has >= 1 job by
                    // definition).
                    // lint:allow(no-panic): batches starts with one Vec and is never drained
                    if !batches.last().expect("non-empty").is_empty() {
                        eobs += 1;
                        if eobs < n_batches {
                            batches.push(Vec::new());
                        }
                    }
                } else {
                    batches
                        .last_mut()
                        // lint:allow(no-panic): batches starts with one Vec and is never drained
                        .expect("non-empty")
                        .push(FlavorId(tok as u16));
                    emitted += 1;
                    if emitted >= self.config.max_jobs_per_period {
                        break;
                    }
                }
            }
            if batches.last().map_or(false, Vec::is_empty) {
                batches.pop();
            }

            // Stage 3: lifetimes over the full resource sequence.
            let start = period_start(p);
            day.batches += batches.len() as u64;
            for batch in &batches {
                day.jobs += batch.len() as u64;
                let user = UserId(next_user);
                next_user = next_user.wrapping_add(1);
                // Once the lifetime LSTM degrades mid-batch, the rest of the
                // batch stays on the baseline hazard (one fallback batch).
                let mut batch_degraded = false;
                for (pos, &flavor) in batch.iter().enumerate() {
                    let bin = if batch_degraded {
                        fallback_jobs += 1;
                        fb.sample_bin(rng)
                    } else {
                        let sampled = self.lifetimes.try_sample_step(
                            &mut lifetime_state,
                            flavor,
                            batch.len(),
                            pos,
                            p,
                            Some(doh),
                            rng,
                        );
                        match sampled {
                            Some(bin) => bin,
                            None => {
                                if fallback_batches >= budget {
                                    return Err(GenerateError::FallbackBudgetExhausted {
                                        budget,
                                    });
                                }
                                fallback_batches += 1;
                                batch_degraded = true;
                                lifetime_state = self.lifetimes.begin();
                                fallback_jobs += 1;
                                fb.sample_bin(rng)
                            }
                        }
                    };
                    let duration = sample_quantized_duration(
                        bins,
                        bin,
                        self.config.interp,
                        self.config.tail_horizon,
                        rng,
                    );
                    jobs.push(Job {
                        start,
                        end: Some(start + duration),
                        flavor,
                        user,
                    });
                }
            }
        }
        day.flush(rec);
        if fallback_batches > 0 {
            rec.record(Event::Counter(CounterEvent {
                name: "gen.fallback_batches".to_string(),
                delta: fallback_batches as u64,
            }));
            rec.record(Event::Counter(CounterEvent {
                name: "gen.fallback_jobs".to_string(),
                delta: fallback_jobs,
            }));
        }
        Ok((jobs, next_user))
    }

    /// Generates a trace and right-censors it at the end of the generated
    /// window (so generated and real test traces are comparable).
    // lint:allow(memory-contract): returns one in-memory Trace by design, bounded by n_periods x max_jobs_per_period jobs for the window the caller picks; streaming shard output is ROADMAP item 2
    pub fn generate_censored(
        &self,
        first_period: u64,
        n_periods: u64,
        catalog: &FlavorCatalog,
        rng: &mut impl Rng,
    ) -> Trace {
        let t = self.generate(first_period, n_periods, catalog, rng);
        let horizon = period_start(first_period + n_periods);
        let jobs = t
            .jobs
            .into_iter()
            .map(|mut j| {
                if j.end.map_or(false, |e| e > horizon) {
                    j.end = None;
                }
                j
            })
            .collect();
        Trace::new(jobs, t.catalog)
    }
}

/// Derives shard-independent RNG seeds: the splitmix64 finalizer over
/// `seed ^ f(stream)`. Each `stream` value yields a decorrelated seed, so
/// shard `i`'s random draws never depend on how many shards precede it or
/// which thread runs it.
fn splitmix64(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9E3779B97F4A7C15))
        .wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Per-simulated-day accounting behind [`GenEvent`] telemetry.
struct DayStats {
    day: u64,
    started: Stopwatch,
    periods: u64,
    batches: u64,
    jobs: u64,
    tokens: u64,
}

impl DayStats {
    fn new(day: u64) -> Self {
        Self {
            day,
            started: Stopwatch::new(),
            periods: 0,
            batches: 0,
            jobs: 0,
            tokens: 0,
        }
    }

    /// Emits the accumulated day (no event for an empty accumulator).
    fn flush(&self, rec: &dyn Recorder) {
        if self.periods == 0 {
            return;
        }
        let wall_ms = self.started.elapsed_ms();
        let secs = wall_ms / 1000.0;
        rec.record(Event::Gen(GenEvent {
            day: self.day,
            periods: self.periods,
            batches: self.batches,
            jobs: self.jobs,
            tokens: self.tokens,
            wall_ms,
            tokens_per_sec: if secs > 0.0 {
                self.tokens as f64 / secs
            } else {
                0.0
            },
        }));
    }

    /// Flushes the current day and starts accumulating `day`.
    fn roll(&mut self, rec: &dyn Recorder, day: u64) {
        self.flush(rec);
        *self = Self::new(day);
    }
}

/// Spreads quantized start/end times across their periods for applications
/// that need concrete orderings (scheduling, §2.4): arrivals are placed in
/// generative order, evenly spaced within the period; departures get a
/// uniform random offset.
pub fn spread_intra_period(trace: &Trace, rng: &mut impl Rng) -> Trace {
    // Count arrivals per period to space them evenly.
    let mut counts: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for j in &trace.jobs {
        *counts.entry(j.start / PERIOD_SECS).or_insert(0) += 1;
    }
    let mut seen: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let jobs: Vec<Job> = trace
        .jobs
        .iter()
        .map(|j| {
            let p = j.start / PERIOD_SECS;
            let n = counts[&p];
            let i = seen.entry(p).or_insert(0);
            let offset = *i * PERIOD_SECS / n.max(1);
            *i += 1;
            let start = j.start + offset;
            let end = j.end.map(|e| {
                let jittered = e + rng.gen_range(0..PERIOD_SECS);
                jittered.max(start + 1)
            });
            Job { start, end, ..*j }
        })
        .collect();
    let mut jobs = jobs;
    jobs.sort_by_key(|j| j.start);
    Trace::new(jobs, trace.catalog.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalTarget;
    use crate::features::{FeatureSpace, TokenStream};
    use crate::train::TrainConfig;
    use glm::{DohStrategy, ElasticNet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use survival::LifetimeBins;
    use trace::period::TemporalFeaturesSpec;

    fn bins() -> LifetimeBins {
        LifetimeBins::from_uppers(vec![600.0, 3600.0, 86_400.0])
    }

    fn training_trace(periods: u64) -> Trace {
        let mut jobs = Vec::new();
        for p in 0..periods {
            let flavor = FlavorId((p % 3) as u16);
            let life = 300 + (p % 3) * 3000;
            for u in 0..2 {
                jobs.push(Job {
                    start: p * 300,
                    end: Some(p * 300 + life),
                    flavor,
                    user: UserId(u),
                });
            }
        }
        Trace::new(jobs, FlavorCatalog::azure16())
    }

    fn build_generator(periods: u64) -> (TraceGenerator, FlavorCatalog) {
        let train = training_trace(periods);
        let secs = periods * 300;
        let temporal = TemporalFeaturesSpec::new(((secs / 86_400) + 1) as usize);
        let space = FeatureSpace::new(16, bins(), temporal);
        let stream = TokenStream::from_trace(&train, &bins(), secs);
        let arrivals = BatchArrivalModel::fit(
            &train,
            secs,
            ArrivalTarget::Batches,
            temporal,
            ElasticNet::ridge(0.1),
            DohStrategy::LastDay,
        )
        .unwrap();
        let mut cfg = TrainConfig::tiny();
        cfg.epochs = 20;
        let flavors = FlavorModel::fit(&stream, space.clone(), cfg);
        let lifetimes = LifetimeModel::fit(&stream, space, cfg);
        let catalog = train.catalog.clone();
        (
            TraceGenerator {
                arrivals,
                flavors,
                lifetimes,
                config: GeneratorConfig::default(),
                fallback: Some(GenFallback::fit(
                    &stream,
                    &FeatureSpace::new(16, bins(), temporal),
                )),
            },
            catalog,
        )
    }

    /// Poisons every weight of a network so its outputs are NaN, forcing
    /// the degradation path.
    fn poison(net: &mut nn::LstmNetwork) {
        for p in net.params_mut() {
            p.value.map_inplace(|_| f64::NAN);
        }
    }

    #[test]
    fn generates_wellformed_trace() {
        let (g, catalog) = build_generator(300);
        let mut rng = StdRng::seed_from_u64(1);
        let t = g.generate(300, 50, &catalog, &mut rng);
        assert!(!t.is_empty(), "generated nothing");
        for j in &t.jobs {
            assert_eq!(j.start % 300, 0);
            assert!(j.end.unwrap() > j.start);
            assert!((j.start / 300) >= 300 && (j.start / 300) < 350);
        }
    }

    #[test]
    fn generation_volume_tracks_training_rate() {
        // Training had 2 jobs (1 batch... actually 2 users => 2 batches) per
        // period; generated volume should be within a small factor.
        let (g, catalog) = build_generator(300);
        let mut rng = StdRng::seed_from_u64(2);
        let t = g.generate(300, 100, &catalog, &mut rng);
        let jobs_per_period = t.len() as f64 / 100.0;
        assert!(
            jobs_per_period > 0.4 && jobs_per_period < 10.0,
            "jobs/period {jobs_per_period}"
        );
    }

    #[test]
    fn scale_knob_multiplies_volume() {
        let (mut g, catalog) = build_generator(200);
        let mut rng = StdRng::seed_from_u64(3);
        let base = g.generate(200, 50, &catalog, &mut rng).len();
        g.config.scale = 10.0;
        let scaled = g.generate(200, 50, &catalog, &mut rng).len();
        assert!(
            scaled as f64 > base as f64 * 4.0,
            "10x scale: {base} -> {scaled}"
        );
    }

    #[test]
    fn generate_censored_censors_past_horizon() {
        let (g, catalog) = build_generator(200);
        let mut rng = StdRng::seed_from_u64(4);
        let t = g.generate_censored(200, 20, &catalog, &mut rng);
        let horizon = 220 * 300;
        for j in &t.jobs {
            if let Some(e) = j.end {
                assert!(e <= horizon);
            }
        }
    }

    #[test]
    fn spread_intra_period_orders_and_bounds() {
        let (g, catalog) = build_generator(200);
        let mut rng = StdRng::seed_from_u64(5);
        let t = g.generate(200, 20, &catalog, &mut rng);
        let spread = spread_intra_period(&t, &mut rng);
        assert_eq!(spread.len(), t.len());
        for (orig, s) in t.jobs.iter().zip(spread.jobs.iter()) {
            // Starts stay within their original period (jobs sorted though,
            // so compare via period membership of the multiset instead).
            let _ = (orig, s);
        }
        // Every start is within its period and ends exceed starts.
        for j in &spread.jobs {
            assert!(j.end.unwrap_or(u64::MAX) > j.start);
        }
        // Starts are strictly sorted per Trace::new's invariant.
        for w in spread.jobs.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn generate_recorded_emits_per_day_throughput() {
        let (g, catalog) = build_generator(300);
        let rec = obsv::MemoryRecorder::new();
        let mut rng = StdRng::seed_from_u64(6);
        // 300 periods starting mid-day: spans days 1 and 2 (288/day).
        let t = g.generate_recorded(300, 300, &catalog, &mut rng, &rec);
        let gen_events: Vec<obsv::GenEvent> = rec
            .events()
            .into_iter()
            .filter_map(|e| match e {
                obsv::Event::Gen(ev) => Some(ev),
                _ => None,
            })
            .collect();
        assert_eq!(gen_events.len(), 2, "{gen_events:?}");
        assert_eq!(gen_events[0].day, 1);
        assert_eq!(gen_events[1].day, 2);
        assert_eq!(gen_events.iter().map(|e| e.periods).sum::<u64>(), 300);
        let jobs: u64 = gen_events.iter().map(|e| e.jobs).sum();
        assert_eq!(jobs, t.len() as u64);
        // Every job costs at least one flavor token; EOBs add more.
        let tokens: u64 = gen_events.iter().map(|e| e.tokens).sum();
        assert!(tokens >= jobs);
        let batches: u64 = gen_events.iter().map(|e| e.batches).sum();
        assert!(batches > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, catalog) = build_generator(150);
        let a = g.generate(150, 30, &catalog, &mut StdRng::seed_from_u64(9));
        let b = g.generate(150, 30, &catalog, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn generate_par_identical_across_thread_counts() {
        // 600 periods spanning multiple one-day shards; the merged trace
        // must be bit-for-bit independent of the worker count.
        let (mut g, catalog) = build_generator(300);
        for doh_per_trace in [true, false] {
            g.config.doh_per_trace = doh_per_trace;
            let one = g.generate_par(300, 600, &catalog, 11, 1);
            let four = g.generate_par(300, 600, &catalog, 11, 4);
            assert_eq!(one, four, "doh_per_trace={doh_per_trace}");
            assert!(!one.is_empty());
        }
    }

    #[test]
    fn generate_par_repeatable_and_seed_sensitive() {
        let (g, catalog) = build_generator(300);
        let a = g.generate_par(300, 400, &catalog, 21, 3);
        let b = g.generate_par(300, 400, &catalog, 21, 3);
        assert_eq!(a, b);
        let c = g.generate_par(300, 400, &catalog, 22, 3);
        assert_ne!(a, c, "different seeds should change the sample");
    }

    #[test]
    fn generate_par_recorded_emits_shard_spans() {
        let (g, catalog) = build_generator(300);
        let rec = obsv::MemoryRecorder::new();
        let t = g
            .try_generate_par_recorded(300, 600, &catalog, 33, 2, &rec)
            .unwrap();
        assert!(!t.is_empty());
        let spans: Vec<String> = rec
            .events()
            .into_iter()
            .filter_map(|e| match e {
                obsv::Event::Span(s) if s.name.starts_with("gen.shard.") => Some(s.name),
                _ => None,
            })
            .collect();
        // 600 periods starting at a day boundary -> 3 one-day shards.
        assert_eq!(spans.len(), 3, "{spans:?}");
        let has_rate = rec.events().iter().any(
            |e| matches!(e, obsv::Event::Gauge(g) if g.name == "gen.jobs_per_sec"),
        );
        assert!(has_rate);
    }

    fn fallback_counters(rec: &obsv::MemoryRecorder) -> (u64, u64) {
        let mut batches = 0;
        let mut jobs = 0;
        for e in rec.events() {
            if let obsv::Event::Counter(c) = e {
                match c.name.as_str() {
                    "gen.fallback_batches" => batches += c.delta,
                    "gen.fallback_jobs" => jobs += c.delta,
                    _ => {}
                }
            }
        }
        (batches, jobs)
    }

    #[test]
    fn poisoned_flavor_lstm_degrades_to_baseline_not_garbage() {
        let (mut g, catalog) = build_generator(200);
        poison(g.flavors.net_mut());
        let rec = obsv::MemoryRecorder::new();
        let mut rng = StdRng::seed_from_u64(10);
        let t = g.generate_recorded(200, 30, &catalog, &mut rng, &rec);
        assert!(!t.is_empty(), "fallback produced nothing");
        for j in &t.jobs {
            assert!(usize::from(j.flavor.0) < catalog.len());
            assert!(j.end.unwrap() > j.start);
        }
        let (batches, jobs) = fallback_counters(&rec);
        assert!(batches > 0, "no fallback batches counted");
        assert_eq!(jobs, t.len() as u64, "all jobs should come from fallback");
    }

    #[test]
    fn poisoned_lifetime_lstm_degrades_per_batch() {
        let (mut g, catalog) = build_generator(200);
        poison(g.lifetimes.net_mut());
        let rec = obsv::MemoryRecorder::new();
        let mut rng = StdRng::seed_from_u64(11);
        let t = g.generate_recorded(200, 30, &catalog, &mut rng, &rec);
        assert!(!t.is_empty());
        for j in &t.jobs {
            assert!(j.end.unwrap() > j.start, "fallback lifetime invalid");
        }
        let (batches, jobs) = fallback_counters(&rec);
        assert!(batches > 0 && jobs > 0);
    }

    #[test]
    fn healthy_model_never_touches_fallback() {
        let (g, catalog) = build_generator(200);
        let rec = obsv::MemoryRecorder::new();
        let mut rng = StdRng::seed_from_u64(12);
        let _ = g.generate_recorded(200, 30, &catalog, &mut rng, &rec);
        assert_eq!(fallback_counters(&rec), (0, 0));
    }

    #[test]
    fn fallback_budget_is_enforced() {
        let (mut g, catalog) = build_generator(200);
        poison(g.flavors.net_mut());
        g.config.max_fallback_batches = 1;
        let mut rng = StdRng::seed_from_u64(13);
        let err = g
            .try_generate_recorded(200, 30, &catalog, &mut rng, &NullRecorder)
            .unwrap_err();
        assert_eq!(err, GenerateError::FallbackBudgetExhausted { budget: 1 });
    }

    #[test]
    fn expired_deadline_is_deadline_exceeded_not_budget_exhausted() {
        // A healthy model with an already-expired deadline: the error must
        // name the timeout, not the degradation budget — callers route the
        // two differently (retry vs give up).
        let (g, catalog) = build_generator(150);
        let bounds = GenBounds::with_deadline(Deadline::after_ms(0.0));
        let mut rng = StdRng::seed_from_u64(30);
        let err = g
            .try_generate_bounded(150, 20, &catalog, &mut rng, &NullRecorder, &bounds)
            .unwrap_err();
        assert_eq!(err, GenerateError::DeadlineExceeded { budget_ms: 0 });
    }

    #[test]
    fn exhausted_budget_is_budget_exhausted_not_deadline() {
        // A sick model with a generous deadline: the error must name the
        // budget even though a deadline was armed.
        let (mut g, catalog) = build_generator(150);
        poison(g.flavors.net_mut());
        g.config.max_fallback_batches = 1;
        let bounds = GenBounds::with_deadline(Deadline::after_ms(1e9));
        let mut rng = StdRng::seed_from_u64(31);
        let err = g
            .try_generate_bounded(150, 20, &catalog, &mut rng, &NullRecorder, &bounds)
            .unwrap_err();
        assert_eq!(err, GenerateError::FallbackBudgetExhausted { budget: 1 });
    }

    #[test]
    fn cancelled_token_aborts_with_cancelled() {
        let (g, catalog) = build_generator(150);
        let cancel = CancelToken::new();
        cancel.cancel();
        let bounds = GenBounds {
            deadline: None,
            cancel: Some(cancel),
        };
        let mut rng = StdRng::seed_from_u64(32);
        let err = g
            .try_generate_bounded(150, 20, &catalog, &mut rng, &NullRecorder, &bounds)
            .unwrap_err();
        assert_eq!(err, GenerateError::Cancelled);
    }

    #[test]
    fn bounded_run_inside_bounds_matches_unbounded() {
        // A run that never trips its bounds must be byte-identical to the
        // unbounded run — bound checks consume no randomness.
        let (g, catalog) = build_generator(150);
        let a = g.generate(150, 20, &catalog, &mut StdRng::seed_from_u64(33));
        let bounds = GenBounds {
            deadline: Some(Deadline::after_ms(1e9)),
            cancel: Some(CancelToken::new()),
        };
        let b = g
            .try_generate_bounded(
                150,
                20,
                &catalog,
                &mut StdRng::seed_from_u64(33),
                &NullRecorder,
                &bounds,
            )
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn par_bounded_deadline_and_cancel_surface_typed_errors() {
        let (g, catalog) = build_generator(300);
        let expired = GenBounds::with_deadline(Deadline::after_ms(0.0));
        let err = g
            .try_generate_par_bounded(300, 600, &catalog, 11, 2, &NullRecorder, &expired)
            .unwrap_err();
        assert_eq!(err, GenerateError::DeadlineExceeded { budget_ms: 0 });
        let cancel = CancelToken::new();
        cancel.cancel();
        let cancelled = GenBounds {
            deadline: None,
            cancel: Some(cancel),
        };
        let err = g
            .try_generate_par_bounded(300, 600, &catalog, 11, 2, &NullRecorder, &cancelled)
            .unwrap_err();
        assert_eq!(err, GenerateError::Cancelled);
        // Inside its bounds, the parallel run matches the unbounded one.
        let roomy = GenBounds::with_deadline(Deadline::after_ms(1e9));
        let bounded = g
            .try_generate_par_bounded(300, 600, &catalog, 11, 2, &NullRecorder, &roomy)
            .unwrap();
        assert_eq!(bounded, g.generate_par(300, 600, &catalog, 11, 2));
    }

    #[test]
    fn try_generate_matches_generate_within_budget() {
        let (g, catalog) = build_generator(150);
        let a = g.generate(150, 20, &catalog, &mut StdRng::seed_from_u64(14));
        let b = g
            .try_generate_recorded(
                150,
                20,
                &catalog,
                &mut StdRng::seed_from_u64(14),
                &NullRecorder,
            )
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_fallback_covers_missing_fit() {
        let (mut g, catalog) = build_generator(150);
        g.fallback = None;
        poison(g.flavors.net_mut());
        let mut rng = StdRng::seed_from_u64(15);
        let t = g.generate(150, 10, &catalog, &mut rng);
        for j in &t.jobs {
            assert!(usize::from(j.flavor.0) < catalog.len());
        }
    }
}
