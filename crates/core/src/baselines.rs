//! End-to-end generation baselines (§6): Naive and SimpleBatch.

use crate::arrivals::{ArrivalTarget, BatchArrivalModel};
use crate::features::{FeatureSpace, TokenStream};
use crate::flavors::FlavorBaseline;
use crate::sampling::{sample_quantized_duration, DEFAULT_TAIL_HORIZON};
use glm::samplers::sample_categorical;
use glm::{DohStrategy, ElasticNet, PoissonFitError};
use rand::Rng;
use serde::{Deserialize, Serialize};
use survival::funcs::sample_hazard_chain;
use survival::{CensoringPolicy, Interpolation, KaplanMeier, Observation};
use trace::batch::{batch_size_histogram, organize_periods};
use trace::period::{period_start, TemporalFeaturesSpec};
use trace::{FlavorCatalog, FlavorId, Job, Trace, UserId};

/// Per-flavor Kaplan–Meier lifetime sampler shared by both baselines.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct KmLifetimes {
    per_flavor: Vec<Option<KaplanMeier>>,
    overall: KaplanMeier,
}

impl KmLifetimes {
    fn fit(stream: &TokenStream, space: &FeatureSpace) -> Self {
        let all: Vec<Observation> = stream
            .jobs
            .iter()
            .map(|j| Observation {
                bin: j.bin,
                censored: j.censored,
            })
            .collect();
        let overall =
            KaplanMeier::fit_smoothed(&space.bins, &all, CensoringPolicy::CensoringAware, 0.0, 0.5)
                // lint:allow(no-panic): observation bins come from space.bins binning, in range by construction
                .expect("observation bins from FeatureSpace are in range");
        let per_flavor = (0..space.n_flavors)
            .map(|f| {
                let obs: Vec<Observation> = stream
                    .jobs
                    .iter()
                    .filter(|j| j.flavor.0 as usize == f)
                    .map(|j| Observation {
                        bin: j.bin,
                        censored: j.censored,
                    })
                    .collect();
                if obs.is_empty() {
                    None
                } else {
                    Some(
                        KaplanMeier::fit_smoothed(
                            &space.bins,
                            &obs,
                            CensoringPolicy::CensoringAware,
                            0.0,
                            0.5,
                        )
                        // lint:allow(no-panic): observation bins come from space.bins binning, in range by construction
                        .expect("observation bins from FeatureSpace are in range"),
                    )
                }
            })
            .collect();
        Self {
            per_flavor,
            overall,
        }
    }

    fn sample_bin(&self, flavor: FlavorId, rng: &mut impl Rng) -> usize {
        let km = self.per_flavor[flavor.0 as usize]
            .as_ref()
            .unwrap_or(&self.overall);
        sample_hazard_chain(km.hazard(), rng)
    }
}

/// The traditional generator (§6): Poisson on *individual* job arrivals, iid
/// multinomial flavors, per-flavor KM lifetimes. No inter-job correlations
/// and, following §5.1's baseline, no day-of-history features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NaiveGenerator {
    arrivals: BatchArrivalModel,
    flavor_probs: Vec<f64>,
    lifetimes: KmLifetimes,
    space: FeatureSpace,
    /// Arrival-rate multiplier.
    pub scale: f64,
}

impl NaiveGenerator {
    /// Fits all three components on a training trace.
    pub fn fit(
        train: &Trace,
        train_secs: u64,
        space: FeatureSpace,
    ) -> Result<Self, PoissonFitError> {
        let arrivals = BatchArrivalModel::fit(
            train,
            train_secs,
            ArrivalTarget::Jobs,
            TemporalFeaturesSpec::without_doh(),
            ElasticNet::ridge(0.05),
            DohStrategy::LastDay,
        )?;
        let stream = TokenStream::from_trace(train, &space.bins, train_secs);
        let flavor_probs =
            FlavorBaseline::multinomial(&stream, space.n_flavors).flavor_only_probs();
        let lifetimes = KmLifetimes::fit(&stream, &space);
        Ok(Self {
            arrivals,
            flavor_probs,
            lifetimes,
            space,
            scale: 1.0,
        })
    }

    /// Generates one sampled trace over `[first_period, first_period + n)`.
    pub fn generate(
        &self,
        first_period: u64,
        n_periods: u64,
        catalog: &FlavorCatalog,
        rng: &mut impl Rng,
    ) -> Trace {
        let mut jobs = Vec::new();
        let mut user = 0u32;
        for p in first_period..first_period + n_periods {
            let n = self.arrivals.sample_count(p, self.scale, rng);
            let start = period_start(p);
            for _ in 0..n {
                let flavor = FlavorId(sample_categorical(&self.flavor_probs, rng) as u16);
                let bin = self.lifetimes.sample_bin(flavor, rng);
                let duration = sample_quantized_duration(
                    &self.space.bins,
                    bin,
                    Interpolation::Cdi,
                    DEFAULT_TAIL_HORIZON,
                    rng,
                );
                // Every job is its own "user": no batch structure at all.
                jobs.push(Job {
                    start,
                    end: Some(start + duration),
                    flavor,
                    user: UserId(user),
                });
                user = user.wrapping_add(1);
            }
        }
        Trace::new(jobs, catalog.clone())
    }
}

/// The non-neural batch-aware baseline (§6): batch Poisson arrivals,
/// empirical batch sizes, one multinomial flavor per batch, one per-flavor
/// KM lifetime per batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimpleBatchGenerator {
    arrivals: BatchArrivalModel,
    /// Batch-size histogram (index i = size i + 1).
    size_weights: Vec<f64>,
    flavor_probs: Vec<f64>,
    lifetimes: KmLifetimes,
    space: FeatureSpace,
    /// Arrival-rate multiplier.
    pub scale: f64,
}

impl SimpleBatchGenerator {
    /// Fits all four components on a training trace.
    pub fn fit(
        train: &Trace,
        train_secs: u64,
        space: FeatureSpace,
        temporal: TemporalFeaturesSpec,
        doh: DohStrategy,
    ) -> Result<Self, PoissonFitError> {
        let arrivals = BatchArrivalModel::fit(
            train,
            train_secs,
            ArrivalTarget::Batches,
            temporal,
            ElasticNet::ridge(0.05),
            doh,
        )?;
        let periods = organize_periods(train);
        let size_weights: Vec<f64> = batch_size_histogram(&periods)
            .iter()
            .map(|&c| c as f64)
            .collect();
        let stream = TokenStream::from_trace(train, &space.bins, train_secs);
        let flavor_probs =
            FlavorBaseline::multinomial(&stream, space.n_flavors).flavor_only_probs();
        let lifetimes = KmLifetimes::fit(&stream, &space);
        Ok(Self {
            arrivals,
            size_weights,
            flavor_probs,
            lifetimes,
            space,
            scale: 1.0,
        })
    }

    /// Generates one sampled trace over `[first_period, first_period + n)`.
    pub fn generate(
        &self,
        first_period: u64,
        n_periods: u64,
        catalog: &FlavorCatalog,
        rng: &mut impl Rng,
    ) -> Trace {
        let mut jobs = Vec::new();
        let mut user = 0u32;
        let doh = self.arrivals.sample_doh_day(rng);
        for p in first_period..first_period + n_periods {
            let n_batches = self.arrivals.sample_count_with_day(p, doh, self.scale, rng);
            let start = period_start(p);
            for _ in 0..n_batches {
                let size = sample_categorical(&self.size_weights, rng) + 1;
                let flavor = FlavorId(sample_categorical(&self.flavor_probs, rng) as u16);
                let bin = self.lifetimes.sample_bin(flavor, rng);
                // One lifetime for the whole batch: sample the duration once.
                let duration = sample_quantized_duration(
                    &self.space.bins,
                    bin,
                    Interpolation::Cdi,
                    DEFAULT_TAIL_HORIZON,
                    rng,
                );
                for _ in 0..size {
                    jobs.push(Job {
                        start,
                        end: Some(start + duration),
                        flavor,
                        user: UserId(user),
                    });
                }
                user = user.wrapping_add(1);
            }
        }
        Trace::new(jobs, catalog.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use survival::LifetimeBins;

    fn bins() -> LifetimeBins {
        LifetimeBins::from_uppers(vec![600.0, 3600.0, 86_400.0])
    }

    fn train_trace(periods: u64) -> Trace {
        let mut jobs = Vec::new();
        for p in 0..periods {
            // Two batches per period: user 0 (2 jobs flavor 1), user 1 (1 job flavor 2).
            for (u, f, n) in [(0u32, 1u16, 2usize), (1, 2, 1)] {
                for _ in 0..n {
                    jobs.push(Job {
                        start: p * 300,
                        end: Some(p * 300 + 600 + (f as u64) * 1200),
                        flavor: FlavorId(f),
                        user: UserId(u),
                    });
                }
            }
        }
        Trace::new(jobs, FlavorCatalog::azure16())
    }

    fn space(secs: u64) -> (FeatureSpace, TemporalFeaturesSpec) {
        let temporal = TemporalFeaturesSpec::new(((secs / 86_400) + 1) as usize);
        (FeatureSpace::new(16, bins(), temporal), temporal)
    }

    #[test]
    fn naive_generates_singleton_users() {
        let t = train_trace(200);
        let (sp, _) = space(200 * 300);
        let g = NaiveGenerator::fit(&t, 200 * 300, sp).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let out = g.generate(200, 50, &t.catalog, &mut rng);
        assert!(!out.is_empty());
        // Naive jobs each get a unique user: no multi-job batches.
        let periods = organize_periods(&out);
        for p in &periods {
            for b in &p.batches {
                assert_eq!(b.len(), 1);
            }
        }
        // Rate roughly matches training (3 jobs/period).
        let rate = out.len() as f64 / 50.0;
        assert!(rate > 1.0 && rate < 9.0, "rate {rate}");
    }

    #[test]
    fn simple_batch_shares_flavor_and_lifetime_within_batch() {
        let t = train_trace(200);
        let (sp, temporal) = space(200 * 300);
        let g =
            SimpleBatchGenerator::fit(&t, 200 * 300, sp, temporal, DohStrategy::LastDay).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let out = g.generate(200, 50, &t.catalog, &mut rng);
        assert!(!out.is_empty());
        let periods = organize_periods(&out);
        let mut multi = 0;
        for p in &periods {
            for b in &p.batches {
                if b.len() >= 2 {
                    multi += 1;
                    let f0 = out.jobs[b.jobs[0]].flavor;
                    let e0 = out.jobs[b.jobs[0]].end;
                    for &i in &b.jobs {
                        assert_eq!(out.jobs[i].flavor, f0);
                        assert_eq!(out.jobs[i].end, e0);
                    }
                }
            }
        }
        assert!(multi > 0, "no multi-job batches generated");
    }

    #[test]
    fn scale_multiplies_naive_volume() {
        let t = train_trace(150);
        let (sp, _) = space(150 * 300);
        let mut g = NaiveGenerator::fit(&t, 150 * 300, sp).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let base = g.generate(150, 40, &t.catalog, &mut rng).len();
        g.scale = 10.0;
        let scaled = g.generate(150, 40, &t.catalog, &mut rng).len();
        assert!(scaled as f64 > base as f64 * 5.0, "{base} -> {scaled}");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let t = train_trace(100);
        let (sp, temporal) = space(100 * 300);
        let g =
            SimpleBatchGenerator::fit(&t, 100 * 300, sp, temporal, DohStrategy::paper_default())
                .unwrap();
        let a = g.generate(100, 20, &t.catalog, &mut StdRng::seed_from_u64(5));
        let b = g.generate(100, 20, &t.catalog, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
