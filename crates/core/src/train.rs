//! Shared training configuration for the two LSTM stages.

use serde::{Deserialize, Serialize};

/// Hyperparameters for LSTM training.
///
/// The paper's configuration (§4.2) is 2 layers × 200 hidden units, trained
/// on minibatches of 50 sequences of length 5000. The crate default is
/// scaled down so the reproduction experiments train on a CPU in minutes;
/// [`TrainConfig::paper_scale`] restores the published values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Hidden units per LSTM layer.
    pub hidden: usize,
    /// Number of LSTM layers.
    pub layers: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Decoupled weight decay.
    pub weight_decay: f64,
    /// Global gradient-norm clip.
    pub clip_norm: f64,
    /// Training epochs (passes over the token stream).
    pub epochs: usize,
    /// Sequence length per training chunk (BPTT span).
    pub seq_len: usize,
    /// Sequences per minibatch.
    pub minibatch: usize,
    /// RNG seed for weight init and data shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            layers: 1,
            lr: 3e-3,
            weight_decay: 1e-5,
            clip_norm: 5.0,
            epochs: 24,
            seq_len: 64,
            minibatch: 8,
            seed: 0x5eed,
        }
    }
}

impl TrainConfig {
    /// The paper's published scale (§4.2). Training at this scale on a CPU
    /// is slow; it exists so the configuration is one call away.
    pub fn paper_scale() -> Self {
        Self {
            hidden: 200,
            layers: 2,
            lr: 1e-3,
            weight_decay: 1e-5,
            clip_norm: 5.0,
            epochs: 10,
            seq_len: 5000,
            minibatch: 50,
            seed: 0x5eed,
        }
    }

    /// A very small configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            hidden: 16,
            layers: 1,
            lr: 5e-3,
            weight_decay: 0.0,
            clip_norm: 5.0,
            epochs: 2,
            seq_len: 32,
            minibatch: 8,
            seed: 0x5eed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_published_numbers() {
        let c = TrainConfig::paper_scale();
        assert_eq!(c.hidden, 200);
        assert_eq!(c.layers, 2);
        assert_eq!(c.seq_len, 5000);
        assert_eq!(c.minibatch, 50);
    }

    #[test]
    fn default_is_smaller_than_paper() {
        let d = TrainConfig::default();
        let p = TrainConfig::paper_scale();
        assert!(d.hidden < p.hidden);
        assert!(d.seq_len < p.seq_len);
    }
}
