//! Shared training configuration and epoch-loop plumbing for the two LSTM
//! stages.
//!
//! Besides [`TrainConfig`], this module defines the hook protocol the
//! resilience layer uses to observe and steer training without the trainers
//! knowing about checkpoints or fault injection: [`TrainHooks`] sees every
//! optimizer step (and may mutate gradients before it, which is how the
//! fault-injection harness plants NaNs) and can abort the epoch with a
//! [`TrainAbort`] — non-fatal aborts model divergence (the guard rolls back
//! and retries), fatal aborts model a killed process (the run stops and must
//! be resumed from a checkpoint).

use nn::Param;
use obsv::{Event, GaugeEvent, Recorder, SpanEvent};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Hyperparameters for LSTM training.
///
/// The paper's configuration (§4.2) is 2 layers × 200 hidden units, trained
/// on minibatches of 50 sequences of length 5000. The crate default is
/// scaled down so the reproduction experiments train on a CPU in minutes;
/// [`TrainConfig::paper_scale`] restores the published values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Hidden units per LSTM layer.
    pub hidden: usize,
    /// Number of LSTM layers.
    pub layers: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Decoupled weight decay.
    pub weight_decay: f64,
    /// Global gradient-norm clip.
    pub clip_norm: f64,
    /// Training epochs (passes over the token stream).
    pub epochs: usize,
    /// Sequence length per training chunk (BPTT span).
    pub seq_len: usize,
    /// Sequences per minibatch.
    pub minibatch: usize,
    /// RNG seed for weight init and data shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            layers: 1,
            lr: 3e-3,
            weight_decay: 1e-5,
            clip_norm: 5.0,
            epochs: 24,
            seq_len: 64,
            minibatch: 8,
            seed: 0x5eed,
        }
    }
}

impl TrainConfig {
    /// The paper's published scale (§4.2). Training at this scale on a CPU
    /// is slow; it exists so the configuration is one call away.
    pub fn paper_scale() -> Self {
        Self {
            hidden: 200,
            layers: 2,
            lr: 1e-3,
            weight_decay: 1e-5,
            clip_norm: 5.0,
            epochs: 10,
            seq_len: 5000,
            minibatch: 50,
            seed: 0x5eed,
        }
    }

    /// A very small configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            hidden: 16,
            layers: 1,
            lr: 5e-3,
            weight_decay: 0.0,
            clip_norm: 5.0,
            epochs: 2,
            seq_len: 32,
            minibatch: 8,
            seed: 0x5eed,
        }
    }
}

/// Data-parallel execution policy for the epoch loops.
///
/// Two independent knobs, deliberately separated:
///
/// - `shard_seqs` fixes the **shard layout** — how many sequences of each
///   minibatch go into one gradient shard. The layout (not the thread
///   count) determines the floating-point grouping of the gradient
///   reduction, so it is part of the numeric result and is recorded in
///   checkpoints.
/// - `threads` fixes the **worker count** — how many OS threads execute
///   the shards. Because shards are merged in fixed tree order, any
///   thread count produces bit-for-bit the same weights.
///
/// The default (`threads: 1, shard_seqs: 0`, where `0` means "the whole
/// minibatch is one shard") reproduces the pre-parallel trainer exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Parallelism {
    /// Worker threads for the shard map (1 = inline on the caller).
    pub threads: usize,
    /// Sequences per gradient shard; `0` puts the whole minibatch in one
    /// shard (the exact single-pass accumulation order of the serial
    /// trainer).
    pub shard_seqs: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Self {
            threads: 1,
            shard_seqs: 0,
        }
    }
}

impl Parallelism {
    /// The serial policy (identical to [`Parallelism::default`]).
    pub fn single() -> Self {
        Self::default()
    }

    /// A policy with `threads` workers and a fixed shard layout of
    /// `shard_seqs` sequences per shard.
    pub fn with_threads(threads: usize, shard_seqs: usize) -> Self {
        Self {
            threads: threads.max(1),
            shard_seqs,
        }
    }

    /// Splits a minibatch of `batch` sequences into contiguous shard
    /// ranges. The split depends only on `shard_seqs` and `batch` — never
    /// on the thread count — so the gradient grouping is reproducible.
    pub fn shards(&self, batch: usize) -> Vec<std::ops::Range<usize>> {
        if batch == 0 {
            return Vec::new();
        }
        let size = if self.shard_seqs == 0 {
            batch
        } else {
            self.shard_seqs.min(batch)
        };
        (0..batch)
            .step_by(size)
            .map(|s| s..(s + size).min(batch))
            .collect()
    }
}

/// Position of one optimizer step within a training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepCtx {
    /// Which model is training (`"flavor"` or `"lifetime"`).
    pub stage: &'static str,
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Zero-based minibatch index within the epoch.
    pub step: usize,
}

/// What one optimizer step did, as seen by [`TrainHooks::post_step`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepStats {
    /// Mean loss of the minibatch (may be non-finite when diverging).
    pub loss: f64,
    /// Pre-clip global gradient norm (may be non-finite).
    pub grad_norm: f64,
    /// True when the optimizer rejected the step (non-finite gradient) and
    /// left the weights untouched.
    pub skipped: bool,
}

/// A hook-requested end to the current epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainAbort {
    /// `true` simulates/reflects a killed process: the whole fit stops and
    /// only a checkpoint can continue it. `false` means "this epoch went
    /// wrong": the resilience runtime rolls back to the epoch's starting
    /// state and retries.
    pub fatal: bool,
    /// Human-readable cause, propagated into guard telemetry.
    pub reason: String,
}

impl fmt::Display for TrainAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.fatal { "fatal" } else { "retryable" };
        write!(f, "{kind} training abort: {}", self.reason)
    }
}

impl std::error::Error for TrainAbort {}

/// Summary of one completed epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochOutcome {
    /// Mean loss over the epoch's targets.
    pub mean_loss: f64,
    /// Optimizer steps taken (including skipped ones).
    pub steps: usize,
    /// Steps the optimizer rejected for non-finite gradients.
    pub skipped_steps: usize,
}

/// Observation/intervention points inside a training epoch.
///
/// The default implementations do nothing, so ordinary training pays only a
/// virtual call per minibatch.
pub trait TrainHooks {
    /// Runs right before `Adam::step`, with the gradients already computed.
    /// Mutating `params[i].grad` here is how the fault-injection harness
    /// plants NaN gradients on a scheduled step.
    fn pre_step(&mut self, _ctx: &StepCtx, _params: &mut [&mut Param]) {}

    /// Runs right after `Adam::step` with the step's outcome.
    ///
    /// # Errors
    ///
    /// Returning a [`TrainAbort`] ends the epoch immediately: the trainer
    /// propagates it without recording the epoch as complete.
    fn post_step(&mut self, _ctx: &StepCtx, _stats: &StepStats) -> Result<(), TrainAbort> {
        Ok(())
    }
}

/// The no-op hook set used by plain (non-resilient) training.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl TrainHooks for NoHooks {}

/// Emits the per-epoch parallel-runtime telemetry shared by both
/// trainers: a `<stage>.tokens_per_sec` gauge and one
/// `<stage>.shard.<slot>` span per shard slot with that slot's
/// accumulated worker wall-clock time over the epoch.
pub(crate) fn emit_parallel_telemetry(
    stage: &str,
    tokens: usize,
    wall_ms: f64,
    shard_ms: &[f64],
    rec: &dyn Recorder,
) {
    let secs = (wall_ms / 1000.0).max(1e-9);
    rec.record(Event::Gauge(GaugeEvent {
        name: format!("{stage}.tokens_per_sec"),
        value: tokens as f64 / secs,
    }));
    for (slot, &ms) in shard_ms.iter().enumerate() {
        rec.record(Event::Span(SpanEvent {
            name: format!("{stage}.shard.{slot}"),
            wall_ms: ms,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_published_numbers() {
        let c = TrainConfig::paper_scale();
        assert_eq!(c.hidden, 200);
        assert_eq!(c.layers, 2);
        assert_eq!(c.seq_len, 5000);
        assert_eq!(c.minibatch, 50);
    }

    #[test]
    fn default_is_smaller_than_paper() {
        let d = TrainConfig::default();
        let p = TrainConfig::paper_scale();
        assert!(d.hidden < p.hidden);
        assert!(d.seq_len < p.seq_len);
    }

    #[test]
    fn default_parallelism_is_one_whole_minibatch_shard() {
        let par = Parallelism::default();
        assert_eq!(par.threads, 1);
        assert_eq!(par.shards(8), vec![0..8]);
        assert!(par.shards(0).is_empty());
    }

    #[test]
    fn shard_layout_ignores_thread_count() {
        let a = Parallelism::with_threads(1, 3);
        let b = Parallelism::with_threads(4, 3);
        assert_eq!(a.shards(8), b.shards(8));
        assert_eq!(a.shards(8), vec![0..3, 3..6, 6..8]);
    }

    #[test]
    fn shard_size_clamps_to_batch() {
        let par = Parallelism::with_threads(2, 100);
        assert_eq!(par.shards(5), vec![0..5]);
        assert_eq!(Parallelism::with_threads(0, 2).threads, 1);
    }
}
