//! `cloudgen` — the paper's contribution: a three-stage RNN-based generative
//! model of cloud workload, plus every baseline it is compared against.
//!
//! The generative process (§2, Figure 2) runs per 5-minute period:
//!
//! 1. [`BatchArrivalModel`] — Poisson regression over temporal features
//!    predicts the number of per-user *batches* arriving in the period; the
//!    count is sampled from the resulting Poisson distribution.
//! 2. [`FlavorModel`] — an LSTM emits the sequence of requested flavors,
//!    one job at a time, with a special end-of-batch (EOB) token; generation
//!    stops after the sampled number of batches.
//! 3. [`LifetimeModel`] — a second LSTM parameterizes the discrete-time
//!    hazard function for each job's lifetime, conditioned on the resources
//!    from stage 2 and the (possibly censored) lifetimes of preceding jobs.
//!
//! [`TraceGenerator`] wires the three stages into an end-to-end sampler
//! (§2.4), including day-of-history sampling and the arrival-scaling knob
//! used for the 10× stress-test experiments.
//!
//! Baselines (§5, §6):
//!
//! - flavor predictors: Uniform, Multinomial, RepeatFlav ([`flavors`]);
//! - lifetime predictors: CoinFlip, overall and per-flavor Kaplan–Meier,
//!   RepeatLifetime ([`lifetimes`]);
//! - end-to-end generators: Naive and SimpleBatch ([`baselines`]).
//!
//! Extensions and alternatives from the paper's discussion sections:
//!
//! - [`resources`]: the §2.2.3 factorized CPU×memory output layer;
//! - [`single_lstm`]: the §7 single-LSTM design with end-of-period tokens
//!   (implemented to reproduce why the paper rejected it);
//! - [`lifetimes::LifetimeHead`]: the §2.3.1 hazard-vs-PMF head ablation;
//! - [`flavors::FlavorModel::sample_step_scaled`]: footnote 5's what-if
//!   EOB-probability scaling.

#![forbid(unsafe_code)]

pub mod arrivals;
pub mod baselines;
pub mod features;
pub mod flavors;
pub mod generator;
pub mod lifetimes;
pub mod resources;
pub mod sampling;
pub mod single_lstm;
pub mod train;

pub use arrivals::{ArrivalTarget, BatchArrivalModel};
pub use baselines::{NaiveGenerator, SimpleBatchGenerator};
pub use features::{FeatureSpace, TokenStream};
pub use flavors::{FlavorBaseline, FlavorEval, FlavorModel, FlavorTrainer};
pub use generator::{GenBounds, GenFallback, GenerateError, GeneratorConfig, TraceGenerator};
pub use lifetimes::{LifetimeBaseline, LifetimeEval, LifetimeModel, LifetimeTrainer};
pub use resources::{MultiResourceModel, ResourceClasses};
pub use single_lstm::SingleLstmModel;
pub use train::{
    EpochOutcome, NoHooks, Parallelism, StepCtx, StepStats, TrainAbort, TrainConfig, TrainHooks,
};
