//! Beyond flavors (§2.2.3): a multi-resource LSTM output layer.
//!
//! Instead of one softmax over opaque flavor ids, the network factorizes a
//! request into per-dimension classes: a softmax generates the CPU class
//! (or EOB), then a second softmax generates the memory class *conditioned
//! on the generated CPU* — the discretized-per-channel scheme van den Oord
//! et al. use for RGB pixels, which the paper suggests for jobs with
//! arbitrary resource combinations.
//!
//! Because flavor ↔ (CPU, memory) is a bijection in catalogs like Azure's
//! 16-flavor set, the joint NLL `-ln p(cpu) - ln p(mem | cpu)` is directly
//! comparable to the flavor LSTM's NLL, which is how the ablation binary
//! scores it.

use crate::features::{FeatureSpace, TokenStream};
use crate::train::TrainConfig;
use glm::samplers::sample_categorical;
use linalg::numeric::{log_softmax_at, softmax_inplace};
use linalg::Mat;
use nn::loss::softmax_cross_entropy;
use nn::lstm::LstmState;
use nn::{Adam, AdamConfig, Linear, Lstm};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use trace::{FlavorCatalog, FlavorId};

/// Discretized resource classes derived from a flavor catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceClasses {
    /// Distinct vCPU values, ascending.
    pub cpu: Vec<f64>,
    /// Distinct memory values (GiB), ascending.
    pub mem: Vec<f64>,
}

impl ResourceClasses {
    /// Extracts the distinct per-dimension values from a catalog.
    pub fn from_catalog(catalog: &FlavorCatalog) -> Self {
        let mut cpu: Vec<f64> = catalog.iter().map(|(_, f)| f.vcpus).collect();
        let mut mem: Vec<f64> = catalog.iter().map(|(_, f)| f.memory_gb).collect();
        cpu.sort_by(f64::total_cmp);
        cpu.dedup();
        mem.sort_by(f64::total_cmp);
        mem.dedup();
        Self { cpu, mem }
    }

    /// Class indices of a flavor.
    ///
    /// # Panics
    ///
    /// Panics if the flavor's values are not in the class lists.
    pub fn classes_of(&self, catalog: &FlavorCatalog, flavor: FlavorId) -> (usize, usize) {
        let f = catalog.get(flavor);
        let c = self
            .cpu
            .iter()
            .position(|&v| v == f.vcpus)
            // lint:allow(no-panic): documented panic; class lists were built from this catalog
            .expect("cpu class");
        let m = self
            .mem
            .iter()
            .position(|&v| v == f.memory_gb)
            // lint:allow(no-panic): documented panic; class lists were built from this catalog
            .expect("mem class");
        (c, m)
    }

    /// The flavor matching a `(cpu, mem)` class pair, if the catalog has one.
    pub fn to_flavor(&self, catalog: &FlavorCatalog, cpu: usize, mem: usize) -> Option<FlavorId> {
        let (cv, mv) = (self.cpu[cpu], self.mem[mem]);
        catalog
            .iter()
            .find(|(_, f)| f.vcpus == cv && f.memory_gb == mv)
            .map(|(id, _)| id)
    }
}

/// The factorized resource model: LSTM body + CPU head + conditional
/// memory head.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiResourceModel {
    lstm: Lstm,
    /// CPU head over `n_cpu + 1` options (last = EOB).
    cpu_head: Linear,
    /// Memory head over `n_mem` options, input `[h ; onehot(cpu)]`.
    mem_head: Linear,
    classes: ResourceClasses,
    space: FeatureSpace,
    /// Mean training loss per epoch.
    pub train_losses: Vec<f64>,
}

/// Joint evaluation metrics, comparable to [`crate::FlavorEval`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceEval {
    /// Mean joint NLL per token: `-ln p(cpu)` (+ `-ln p(mem|cpu)` for jobs).
    pub nll: f64,
    /// 1-best error on the joint prediction (both dimensions must match).
    pub one_best_err: f64,
    /// Tokens evaluated.
    pub steps: usize,
}

impl MultiResourceModel {
    /// Trains the factorized model on a token stream.
    ///
    /// Uses the same input features as the flavor LSTM (previous token
    /// one-hot + temporal), so any difference in evaluation comes from the
    /// output factorization only.
    pub fn fit(
        stream: &TokenStream,
        space: FeatureSpace,
        catalog: &FlavorCatalog,
        cfg: TrainConfig,
    ) -> Self {
        let classes = ResourceClasses::from_catalog(catalog);
        let n_cpu = classes.cpu.len();
        let n_mem = classes.mem.len();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x3E50);
        let mut lstm = Lstm::new(space.flavor_input_dim(), cfg.hidden, cfg.layers, &mut rng);
        let mut cpu_head = Linear::new(cfg.hidden, n_cpu + 1, &mut rng);
        let mut mem_head = Linear::new(cfg.hidden + n_cpu + 1, n_mem, &mut rng);
        let mut opt = Adam::new(AdamConfig {
            lr: cfg.lr,
            weight_decay: cfg.weight_decay,
            clip_norm: Some(cfg.clip_norm),
            ..Default::default()
        });

        // Precompute per-token (cpu_class-or-EOB, Option<mem_class>).
        let targets: Vec<(usize, Option<usize>)> = stream
            .tokens
            .iter()
            .map(|t| {
                if t.id == space.n_flavors {
                    (n_cpu, None)
                } else {
                    let (c, m) = classes.classes_of(catalog, FlavorId(t.id as u16));
                    (c, Some(m))
                }
            })
            .collect();

        let n = stream.tokens.len();
        let l = cfg.seq_len;
        let mut chunk_starts: Vec<usize> = (0..n.saturating_sub(l - 1)).step_by(l).collect();
        let mut train_losses = Vec::with_capacity(cfg.epochs);
        let dim = space.flavor_input_dim();

        for epoch in 0..cfg.epochs {
            // Step decay: drop the learning rate at 1/2 and 3/4 of training
            // so the softmax/hazard argmax sharpens late in training.
            let lr_factor = if epoch * 4 >= cfg.epochs * 3 {
                0.1
            } else if epoch * 2 >= cfg.epochs {
                0.3
            } else {
                1.0
            };
            opt.config_mut().lr = cfg.lr * lr_factor;
            chunk_starts.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut epoch_count = 0usize;
            for mb in chunk_starts.chunks(cfg.minibatch) {
                let b = mb.len();
                let mut xs = Vec::with_capacity(l);
                for t in 0..l {
                    let mut x = Mat::zeros(b, dim);
                    for (row, &start) in mb.iter().enumerate() {
                        let idx = start + t;
                        let prev = if idx == 0 {
                            space.n_flavors
                        } else {
                            stream.tokens[idx - 1].id
                        };
                        space.encode_flavor_step(
                            prev,
                            stream.tokens[idx].period,
                            None,
                            x.row_mut(row),
                        );
                    }
                    xs.push(x);
                }

                lstm.zero_grad();
                cpu_head.zero_grad();
                mem_head.zero_grad();
                let (hs, cache) = lstm.forward(&xs);

                let scale = 1.0 / (l * b) as f64;
                let mut d_hidden = Vec::with_capacity(l);
                for (t, h) in hs.iter().enumerate() {
                    // CPU head on every row.
                    let cpu_logits = cpu_head.forward(h);
                    let cpu_targets: Vec<usize> =
                        mb.iter().map(|&start| targets[start + t].0).collect();
                    let (loss_c, n_c, mut d_cpu) = softmax_cross_entropy(&cpu_logits, &cpu_targets);
                    epoch_loss += loss_c;
                    epoch_count += n_c;
                    d_cpu.scale(scale);
                    let mut dh = cpu_head.backward(h, &d_cpu);

                    // Memory head on job rows, conditioned on the true CPU.
                    let mut mem_in = Mat::zeros(b, cfg.hidden + n_cpu + 1);
                    let mut mem_targets = Vec::with_capacity(b);
                    let mut mem_rows = Vec::with_capacity(b);
                    for (row, &start) in mb.iter().enumerate() {
                        if let (c, Some(m)) = targets[start + t] {
                            mem_in.row_mut(row)[..cfg.hidden].copy_from_slice(h.row(row));
                            mem_in.row_mut(row)[cfg.hidden + c] = 1.0;
                            mem_targets.push(m);
                            mem_rows.push(row);
                        }
                    }
                    if !mem_rows.is_empty() {
                        // Compact the participating rows.
                        let compact =
                            Mat::from_fn(mem_rows.len(), cfg.hidden + n_cpu + 1, |r, c| {
                                mem_in[(mem_rows[r], c)]
                            });
                        let mem_logits = mem_head.forward(&compact);
                        let (loss_m, n_m, mut d_mem) =
                            softmax_cross_entropy(&mem_logits, &mem_targets);
                        epoch_loss += loss_m;
                        epoch_count += n_m;
                        d_mem.scale(scale);
                        let d_in = mem_head.backward(&compact, &d_mem);
                        for (r, &row) in mem_rows.iter().enumerate() {
                            linalg::matrix::axpy_slice(
                                &mut dh.row_mut(row)[..cfg.hidden],
                                1.0,
                                &d_in.row(r)[..cfg.hidden],
                            );
                        }
                    }
                    d_hidden.push(dh);
                }
                lstm.backward(&cache, &d_hidden);
                let mut params = lstm.params_mut();
                params.extend(cpu_head.params_mut());
                params.extend(mem_head.params_mut());
                // Skip-step semantics: a non-finite gradient leaves the
                // weights untouched and training simply moves on.
                let _ = opt.step(&mut params);
            }
            train_losses.push(epoch_loss / epoch_count.max(1) as f64);
        }
        Self {
            lstm,
            cpu_head,
            mem_head,
            classes,
            space,
            train_losses,
        }
    }

    /// The resource classes.
    pub fn classes(&self) -> &ResourceClasses {
        &self.classes
    }

    /// Teacher-forced joint evaluation over a test stream.
    ///
    /// The joint NLL of a job token is `-ln p(cpu) - ln p(mem | cpu)`; of an
    /// EOB token, `-ln p(EOB)` — directly comparable to the flavor LSTM's
    /// per-token NLL when flavor ↔ (cpu, mem) is a bijection.
    pub fn evaluate(&self, stream: &TokenStream, catalog: &FlavorCatalog) -> ResourceEval {
        let n_cpu = self.classes.cpu.len();
        let hidden = self.lstm.hidden();
        let mut state = self.lstm.zero_state(1);
        let mut x = Mat::zeros(1, self.space.flavor_input_dim());
        let mut nll = 0.0;
        let mut errors = 0usize;
        for (idx, tok) in stream.tokens.iter().enumerate() {
            let prev = if idx == 0 {
                self.space.n_flavors
            } else {
                stream.tokens[idx - 1].id
            };
            self.space
                .encode_flavor_step(prev, tok.period, None, x.row_mut(0));
            let h = self.lstm.step(&x, &mut state);
            let cpu_logits = self.cpu_head.forward(&h);
            let cpu_row = cpu_logits.row(0);

            let (true_cpu, true_mem) = if tok.id == self.space.n_flavors {
                (n_cpu, None)
            } else {
                let (c, m) = self.classes.classes_of(catalog, FlavorId(tok.id as u16));
                (c, Some(m))
            };
            nll -= log_softmax_at(cpu_row, true_cpu);
            let cpu_pred = argmax(cpu_row);
            let mut correct = cpu_pred == true_cpu;

            if let Some(m) = true_mem {
                let mut mem_in = Mat::zeros(1, hidden + n_cpu + 1);
                mem_in.row_mut(0)[..hidden].copy_from_slice(h.row(0));
                mem_in.row_mut(0)[hidden + true_cpu] = 1.0;
                let mem_logits = self.mem_head.forward(&mem_in);
                nll -= log_softmax_at(mem_logits.row(0), m);
                correct = correct && argmax(mem_logits.row(0)) == m;
            }
            if !correct {
                errors += 1;
            }
        }
        let n = stream.tokens.len().max(1);
        ResourceEval {
            nll: nll / n as f64,
            one_best_err: errors as f64 / n as f64,
            steps: n,
        }
    }

    /// Samples the next token: returns `None` for EOB, or the flavor
    /// matching the sampled `(cpu, mem)` pair (falling back to the nearest
    /// memory class with a matching catalog entry).
    pub fn sample_step(
        &self,
        state: &mut LstmState,
        prev_token: usize,
        period: u64,
        doh_override: Option<u32>,
        catalog: &FlavorCatalog,
        rng: &mut impl Rng,
    ) -> Option<FlavorId> {
        let n_cpu = self.classes.cpu.len();
        let hidden = self.lstm.hidden();
        let mut x = Mat::zeros(1, self.space.flavor_input_dim());
        self.space
            .encode_flavor_step(prev_token, period, doh_override, x.row_mut(0));
        let h = self.lstm.step(&x, state);
        let mut cpu_probs = self.cpu_head.forward(&h).row(0).to_vec();
        softmax_inplace(&mut cpu_probs);
        let cpu = sample_categorical(&cpu_probs, rng);
        if cpu == n_cpu {
            return None; // EOB
        }
        let mut mem_in = Mat::zeros(1, hidden + n_cpu + 1);
        mem_in.row_mut(0)[..hidden].copy_from_slice(h.row(0));
        mem_in.row_mut(0)[hidden + cpu] = 1.0;
        let mut mem_probs = self.mem_head.forward(&mem_in).row(0).to_vec();
        softmax_inplace(&mut mem_probs);
        let mem = sample_categorical(&mem_probs, rng);
        self.classes.to_flavor(catalog, cpu, mem).or_else(|| {
            // Nearest memory class with a valid flavor for this CPU.
            (0..self.classes.mem.len())
                .min_by_key(|&m| {
                    if self.classes.to_flavor(catalog, cpu, m).is_some() {
                        (self.classes.mem[m] - self.classes.mem[mem]).abs() as u64
                    } else {
                        u64::MAX
                    }
                })
                .and_then(|m| self.classes.to_flavor(catalog, cpu, m))
        })
    }

    /// Zero state for generation.
    pub fn zero_state(&self) -> LstmState {
        self.lstm.zero_state(1)
    }
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use survival::LifetimeBins;
    use trace::period::TemporalFeaturesSpec;
    use trace::{Job, Trace, UserId};

    fn bins() -> LifetimeBins {
        LifetimeBins::from_uppers(vec![600.0, 3600.0])
    }

    fn space() -> FeatureSpace {
        FeatureSpace::new(16, bins(), TemporalFeaturesSpec::new(2))
    }

    fn repetitive_trace(periods: u64) -> Trace {
        let mut jobs = Vec::new();
        for p in 0..periods {
            let flavor = FlavorId((p % 4) as u16 * 4); // distinct CPU classes
            for _ in 0..3 {
                jobs.push(Job {
                    start: p * 300,
                    end: Some(p * 300 + 600),
                    flavor,
                    user: UserId(0),
                });
            }
        }
        Trace::new(jobs, FlavorCatalog::azure16())
    }

    #[test]
    fn classes_cover_azure16() {
        let catalog = FlavorCatalog::azure16();
        let classes = ResourceClasses::from_catalog(&catalog);
        assert_eq!(classes.cpu.len(), 4);
        // azure16 memory values overlap across CPU sizes; count distinct.
        assert!(classes.mem.len() >= 4);
        for id in catalog.ids() {
            let (c, m) = classes.classes_of(&catalog, id);
            assert_eq!(classes.to_flavor(&catalog, c, m), Some(id));
        }
    }

    #[test]
    fn training_learns_structure() {
        let catalog = FlavorCatalog::azure16();
        let train = TokenStream::from_trace(&repetitive_trace(300), &bins(), 1_000_000);
        let test = TokenStream::from_trace(&repetitive_trace(80), &bins(), 1_000_000);
        let mut cfg = TrainConfig::tiny();
        cfg.epochs = 25;
        let model = MultiResourceModel::fit(&train, space(), &catalog, cfg);
        let eval = model.evaluate(&test, &catalog);
        // Uniform joint NLL would be ln(5) + ~ln(7) per job; structure should
        // push it far below ln(5).
        assert!(eval.nll < 5.0f64.ln(), "nll {}", eval.nll);
        assert!(model.train_losses.last().unwrap() < model.train_losses.first().unwrap());
    }

    #[test]
    fn sampling_yields_valid_flavors_and_eobs() {
        let catalog = FlavorCatalog::azure16();
        let train = TokenStream::from_trace(&repetitive_trace(120), &bins(), 1_000_000);
        let model = MultiResourceModel::fit(&train, space(), &catalog, TrainConfig::tiny());
        let mut rng = StdRng::seed_from_u64(5);
        let mut state = model.zero_state();
        let mut prev = 16usize;
        let mut eobs = 0;
        for _ in 0..200 {
            match model.sample_step(&mut state, prev, 3, Some(0), &catalog, &mut rng) {
                Some(f) => {
                    assert!((f.0 as usize) < catalog.len());
                    prev = f.0 as usize;
                }
                None => {
                    eobs += 1;
                    prev = 16;
                }
            }
        }
        assert!(eobs > 0, "never emitted EOB");
    }
}
