//! The single-LSTM alternative the paper considered and rejected (§7).
//!
//! Instead of a separate Poisson stage for batch counts, one LSTM controls
//! everything through its token stream: flavors, end-of-batch (EOB) tokens,
//! and end-of-period (EOP) tokens. The paper reports that generated volume
//! was "exquisitely sensitive to the timely sampling of these EOP tokens"
//! and kept the explicit arrival stage; this module exists to reproduce that
//! comparison (see the `ablation_single_lstm` binary).
//!
//! Durations still come from the stage-3 lifetime model — the paper notes
//! that even the single-LSTM design generates flavors and durations
//! sequentially.

use crate::features::FeatureSpace;
use crate::train::TrainConfig;
use glm::samplers::sample_categorical;
use linalg::numeric::softmax_inplace;
use linalg::Mat;
use nn::loss::softmax_cross_entropy;
use nn::{Adam, AdamConfig, LstmNetwork};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use trace::batch::organize_periods;
use trace::period::TemporalInfo;
use trace::{FlavorId, Trace};

/// One token: flavor id in `0..K`, EOB = `K`, EOP = `K + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodToken {
    /// Token id.
    pub id: usize,
    /// Period the token belongs to.
    pub period: u64,
}

/// Flattens a trace into a single-LSTM stream: per period, the jobs of each
/// batch followed by EOB, then one EOP — including bare EOPs for empty
/// periods within `[first_period, first_period + n_periods)`.
pub fn period_token_stream(
    trace: &Trace,
    first_period: u64,
    n_periods: u64,
) -> Vec<PeriodToken> {
    let k = trace.catalog.len();
    let periods = organize_periods(trace);
    let mut by_period = std::collections::BTreeMap::new();
    for p in &periods {
        by_period.insert(p.period, p);
    }
    let mut tokens = Vec::new();
    for period in first_period..first_period + n_periods {
        if let Some(pj) = by_period.get(&period) {
            for batch in &pj.batches {
                for &idx in &batch.jobs {
                    tokens.push(PeriodToken {
                        id: trace.jobs[idx].flavor.0 as usize,
                        period,
                    });
                }
                tokens.push(PeriodToken { id: k, period });
            }
        }
        tokens.push(PeriodToken { id: k + 1, period });
    }
    tokens
}

/// The single-LSTM workload model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SingleLstmModel {
    net: LstmNetwork,
    space: FeatureSpace,
    /// Mean training loss per epoch.
    pub train_losses: Vec<f64>,
}

/// One generated period's worth of flavors, grouped into batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedPeriod {
    /// Batches of flavors.
    pub batches: Vec<Vec<FlavorId>>,
}

impl SingleLstmModel {
    /// Token-space size: `K` flavors + EOB + EOP.
    fn vocab(&self) -> usize {
        self.space.n_flavors + 2
    }

    fn input_dim(space: &FeatureSpace) -> usize {
        // Previous-token one-hot over K + 2 options, plus temporal features.
        space.n_flavors + 2 + space.temporal.dim()
    }

    fn encode(space: &FeatureSpace, prev: usize, period: u64, out: &mut [f64]) {
        let vocab = space.n_flavors + 2;
        out.iter_mut().for_each(|x| *x = 0.0);
        out[prev] = 1.0;
        let info = TemporalInfo::of_period(period);
        space.temporal.encode_into(info, None, &mut out[vocab..]);
    }

    /// Trains on a period-token stream.
    pub fn fit(tokens: &[PeriodToken], space: FeatureSpace, cfg: TrainConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE0F);
        let vocab = space.n_flavors + 2;
        let dim = Self::input_dim(&space);
        let mut net = LstmNetwork::with_skip(dim, cfg.hidden, cfg.layers, vocab, &mut rng);
        let mut opt = Adam::new(AdamConfig {
            lr: cfg.lr,
            weight_decay: cfg.weight_decay,
            clip_norm: Some(cfg.clip_norm),
            ..Default::default()
        });

        let n = tokens.len();
        let l = cfg.seq_len;
        let mut chunk_starts: Vec<usize> = (0..n.saturating_sub(l - 1)).step_by(l).collect();
        let mut train_losses = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            let lr_factor = if epoch * 4 >= cfg.epochs * 3 {
                0.1
            } else if epoch * 2 >= cfg.epochs {
                0.3
            } else {
                1.0
            };
            opt.config_mut().lr = cfg.lr * lr_factor;
            chunk_starts.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut epoch_count = 0usize;
            for mb in chunk_starts.chunks(cfg.minibatch) {
                let b = mb.len();
                let mut xs = Vec::with_capacity(l);
                let mut targets = Vec::with_capacity(l);
                for t in 0..l {
                    let mut x = Mat::zeros(b, dim);
                    let mut tgt = Vec::with_capacity(b);
                    for (row, &start) in mb.iter().enumerate() {
                        let idx = start + t;
                        let prev = if idx == 0 { vocab - 1 } else { tokens[idx - 1].id };
                        Self::encode(&space, prev, tokens[idx].period, x.row_mut(row));
                        tgt.push(tokens[idx].id);
                    }
                    xs.push(x);
                    targets.push(tgt);
                }
                net.zero_grad();
                let (logits, cache) = net.forward(&xs);
                let scale = 1.0 / (l * b) as f64;
                let mut dlogits = Vec::with_capacity(l);
                for (t, logit) in logits.iter().enumerate() {
                    let (loss, count, mut d) = softmax_cross_entropy(logit, &targets[t]);
                    epoch_loss += loss;
                    epoch_count += count;
                    d.scale(scale);
                    dlogits.push(d);
                }
                net.backward(&cache, &dlogits);
                // Skip-step semantics: a non-finite gradient leaves the
                // weights untouched and training simply moves on.
                let _ = opt.step(&mut net.params_mut());
            }
            train_losses.push(epoch_loss / epoch_count.max(1) as f64);
        }
        Self { net, space, train_losses }
    }

    /// Generates periods `[first_period, first_period + n_periods)`.
    ///
    /// The EOP token advances the clock; `max_jobs_per_period` guards
    /// against an LSTM that fails to emit EOP in time (the §7 failure mode
    /// this model exists to demonstrate). `eop_scale` multiplies the EOP
    /// probability — the post-processing knob the paper's footnote 5
    /// mentions for what-if control of the single-LSTM design.
    pub fn generate(
        &self,
        first_period: u64,
        n_periods: u64,
        max_jobs_per_period: usize,
        eop_scale: f64,
        rng: &mut impl Rng,
    ) -> Vec<GeneratedPeriod> {
        let k = self.space.n_flavors;
        let vocab = self.vocab();
        let mut state = self.net.zero_state(1);
        let mut prev = vocab - 1; // start as if an EOP just occurred
        let mut x = Mat::zeros(1, Self::input_dim(&self.space));
        let mut out = Vec::with_capacity(n_periods as usize);
        for period in first_period..first_period + n_periods {
            let mut batches: Vec<Vec<FlavorId>> = vec![Vec::new()];
            let mut jobs = 0usize;
            loop {
                Self::encode(&self.space, prev, period, x.row_mut(0));
                let logits = self.net.step(&x, &mut state);
                let mut probs = logits.row(0).to_vec();
                softmax_inplace(&mut probs);
                probs[vocab - 1] *= eop_scale;
                let tok = sample_categorical(&probs, rng);
                prev = tok;
                if tok == vocab - 1 {
                    break; // EOP
                } else if tok == k {
                    // lint:allow(no-panic): batches starts with one Vec and is never drained
                    if !batches.last().expect("non-empty").is_empty() {
                        batches.push(Vec::new());
                    }
                } else {
                    // lint:allow(no-panic): batches starts with one Vec and is never drained
                    batches.last_mut().expect("non-empty").push(FlavorId(tok as u16));
                    jobs += 1;
                    if jobs >= max_jobs_per_period {
                        // Runaway period: force the EOP.
                        prev = vocab - 1;
                        break;
                    }
                }
            }
            if batches.last().map_or(false, Vec::is_empty) {
                batches.pop();
            }
            out.push(GeneratedPeriod { batches });
        }
        out
    }

    /// Teacher-forced mean NLL per token over a stream.
    pub fn nll(&self, tokens: &[PeriodToken]) -> f64 {
        let vocab = self.vocab();
        let mut state = self.net.zero_state(1);
        let mut x = Mat::zeros(1, Self::input_dim(&self.space));
        let mut nll = 0.0;
        for (idx, tok) in tokens.iter().enumerate() {
            let prev = if idx == 0 { vocab - 1 } else { tokens[idx - 1].id };
            Self::encode(&self.space, prev, tok.period, x.row_mut(0));
            let logits = self.net.step(&x, &mut state);
            nll -= linalg::numeric::log_softmax_at(logits.row(0), tok.id);
        }
        nll / tokens.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use survival::LifetimeBins;
    use trace::period::TemporalFeaturesSpec;
    use trace::{FlavorCatalog, Job, UserId};

    fn bins() -> LifetimeBins {
        LifetimeBins::from_uppers(vec![600.0, 3600.0])
    }

    fn mk_trace(periods: u64) -> Trace {
        let mut jobs = Vec::new();
        for p in 0..periods {
            // Every second period has one 2-job batch.
            if p % 2 == 0 {
                for _ in 0..2 {
                    jobs.push(Job {
                        start: p * 300,
                        end: Some(p * 300 + 600),
                        flavor: FlavorId((p % 3) as u16),
                        user: UserId(0),
                    });
                }
            }
        }
        Trace::new(jobs, FlavorCatalog::azure16())
    }

    #[test]
    fn stream_includes_empty_period_eops() {
        let t = mk_trace(6);
        let s = period_token_stream(&t, 0, 6);
        // Periods 0,2,4: f f EOB EOP; periods 1,3,5: EOP.
        let eops = s.iter().filter(|t| t.id == 17).count();
        assert_eq!(eops, 6);
        let ids: Vec<usize> = s.iter().take(5).map(|t| t.id).collect();
        assert_eq!(ids, vec![0, 0, 16, 17, 17]);
    }

    #[test]
    fn training_and_generation_round_trip() {
        let t = mk_trace(400);
        let stream = period_token_stream(&t, 0, 400);
        let space = FeatureSpace::new(16, bins(), TemporalFeaturesSpec::new(2));
        let mut cfg = TrainConfig::tiny();
        cfg.epochs = 20;
        let model = SingleLstmModel::fit(&stream, space, cfg);
        assert!(model.train_losses.last().unwrap() < model.train_losses.first().unwrap());

        let mut rng = StdRng::seed_from_u64(3);
        let periods = model.generate(400, 50, 500, 1.0, &mut rng);
        assert_eq!(periods.len(), 50);
        let jobs: usize = periods
            .iter()
            .map(|p| p.batches.iter().map(Vec::len).sum::<usize>())
            .sum();
        // Training data has 1 job/period on average; volume should be in the
        // right ballpark (the EOP-sensitivity the paper warns about shows up
        // at scale, not necessarily on toy data).
        assert!(jobs > 5 && jobs < 500, "{jobs} jobs");
    }

    #[test]
    fn nll_improves_with_training() {
        let t = mk_trace(300);
        let stream = period_token_stream(&t, 0, 300);
        let space = FeatureSpace::new(16, bins(), TemporalFeaturesSpec::new(2));
        let short = SingleLstmModel::fit(&stream, space.clone(), TrainConfig::tiny());
        let mut cfg = TrainConfig::tiny();
        cfg.epochs = 20;
        let long = SingleLstmModel::fit(&stream, space, cfg);
        assert!(long.nll(&stream) < short.nll(&stream));
    }

    #[test]
    fn runaway_cap_forces_eop() {
        let t = mk_trace(100);
        let stream = period_token_stream(&t, 0, 100);
        let space = FeatureSpace::new(16, bins(), TemporalFeaturesSpec::new(2));
        let model = SingleLstmModel::fit(&stream, space, TrainConfig::tiny());
        let mut rng = StdRng::seed_from_u64(4);
        // eop_scale 0 would loop forever without the cap.
        let periods = model.generate(100, 3, 25, 0.0, &mut rng);
        for p in &periods {
            let jobs: usize = p.batches.iter().map(Vec::len).sum();
            assert!(jobs <= 25);
        }
    }
}
