//! Stage 2: the flavor sequence model (§2.2) and its baselines (§5.2).
//!
//! The LSTM sees, at each step, a one-hot of the previous token (flavor or
//! EOB) plus the period's temporal features, and emits a softmax over the
//! `K + 1` next-token options. Training follows Graves-style teacher
//! forcing: the observed previous token is the input for the next step.

use crate::train::{
    emit_parallel_telemetry, EpochOutcome, NoHooks, Parallelism, StepCtx, StepStats, TrainAbort,
    TrainConfig, TrainHooks,
};
use crate::features::{FeatureSpace, TokenStream};
use glm::samplers::sample_categorical;
use linalg::numeric::{log_softmax_at, softmax_inplace};
use linalg::{Mat, WorkerPool};
use nn::accum::GradAccum;
use nn::loss::softmax_cross_entropy;
use nn::lstm::LstmState;
use nn::{Adam, AdamConfig, LstmNetwork, StepError};
use obsv::{profile, EpochEvent, Event, NullRecorder, Recorder, Stopwatch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Step-decay learning-rate factor: 1.0 for the first half of training,
/// 0.3 until 3/4, then 0.1, so the softmax/hazard argmax sharpens late.
pub(crate) fn lr_factor(epoch: usize, epochs: usize) -> f64 {
    if epoch * 4 >= epochs * 3 {
        0.1
    } else if epoch * 2 >= epochs {
        0.3
    } else {
        1.0
    }
}

/// Prediction metrics for flavor models (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlavorEval {
    /// Mean negative log-likelihood per step (`None` for non-probabilistic
    /// baselines).
    pub nll: Option<f64>,
    /// Next-step 1-best classification error rate.
    pub one_best_err: f64,
    /// Steps evaluated.
    pub steps: usize,
}

/// The trained flavor LSTM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlavorModel {
    net: LstmNetwork,
    space: FeatureSpace,
    /// Mean training loss per epoch (for diagnostics).
    pub train_losses: Vec<f64>,
}

/// Generation-time state: recurrent state plus the previous token.
#[derive(Debug, Clone)]
pub struct FlavorGenState {
    state: LstmState,
    prev: usize,
}

impl FlavorModel {
    /// Trains the flavor LSTM on a token stream.
    ///
    /// The stream is chopped into `cfg.seq_len` chunks; each minibatch
    /// stacks `cfg.minibatch` chunks and starts from the zero state (§4.2).
    /// A trailing partial chunk is dropped.
    pub fn fit(stream: &TokenStream, space: FeatureSpace, cfg: TrainConfig) -> Self {
        Self::fit_recorded(stream, space, cfg, &NullRecorder)
    }

    /// [`FlavorModel::fit`] with telemetry: emits one [`EpochEvent`]
    /// (stage `"flavor"`) per epoch, carrying the mean loss, the pre-clip
    /// gradient norms from [`Adam::step`], the learning-rate factor, and
    /// wall-clock timing.
    pub fn fit_recorded(
        stream: &TokenStream,
        space: FeatureSpace,
        cfg: TrainConfig,
        rec: &dyn Recorder,
    ) -> Self {
        Self::fit_par_recorded(stream, space, cfg, Parallelism::single(), rec)
    }

    /// [`FlavorModel::fit_recorded`] under an explicit data-parallel
    /// policy. The shard layout (`par.shard_seqs`) is part of the numeric
    /// result; the worker count is not.
    pub fn fit_par_recorded(
        stream: &TokenStream,
        space: FeatureSpace,
        cfg: TrainConfig,
        par: Parallelism,
        rec: &dyn Recorder,
    ) -> Self {
        let _prof = profile::span("train");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut trainer = FlavorTrainer::new(stream, space, cfg, &mut rng);
        trainer.set_parallelism(par);
        for _ in 0..cfg.epochs {
            // NoHooks never aborts, so the outcome is always Ok; losses and
            // telemetry accumulate inside the trainer either way.
            let _ = trainer.run_epoch(stream, 1.0, &mut rng, rec, &mut NoHooks);
        }
        trainer.into_model()
    }

    /// The feature space the model was trained with.
    pub fn space(&self) -> &FeatureSpace {
        &self.space
    }

    /// Mutable access to the underlying network — exists so the
    /// fault-injection harness can corrupt a trained model in tests; not
    /// part of the supported API.
    #[doc(hidden)]
    pub fn net_mut(&mut self) -> &mut LstmNetwork {
        &mut self.net
    }

    /// Teacher-forced evaluation over a test stream: per-step NLL and 1-best
    /// error, computed with full knowledge of the true history (§5.2).
    pub fn evaluate(&self, stream: &TokenStream) -> FlavorEval {
        let mut state = self.net.zero_state(1);
        let mut x = Mat::zeros(1, self.space.flavor_input_dim());
        let mut nll = 0.0;
        let mut errors = 0usize;
        let n = stream.tokens.len();
        for (idx, tok) in stream.tokens.iter().enumerate() {
            let prev = if idx == 0 {
                self.space.n_flavors
            } else {
                stream.tokens[idx - 1].id
            };
            self.space
                .encode_flavor_step(prev, tok.period, None, x.row_mut(0));
            let logits = self.net.step(&x, &mut state);
            let row = logits.row(0);
            nll -= log_softmax_at(row, tok.id);
            let pred = argmax(row);
            if pred != tok.id {
                errors += 1;
            }
        }
        FlavorEval {
            nll: Some(nll / n.max(1) as f64),
            one_best_err: errors as f64 / n.max(1) as f64,
            steps: n,
        }
    }

    /// Starts a generation run (previous token = EOB, zero state).
    pub fn begin(&self) -> FlavorGenState {
        FlavorGenState {
            state: self.net.zero_state(1),
            prev: self.space.n_flavors,
        }
    }

    /// Samples the next token for the given period, updating the state.
    ///
    /// Returns a token id in `0..=K` (`K` = EOB).
    pub fn sample_step(
        &self,
        gen: &mut FlavorGenState,
        period: u64,
        doh_override: Option<u32>,
        rng: &mut impl Rng,
    ) -> usize {
        self.sample_step_scaled(gen, period, doh_override, 1.0, rng)
    }

    /// Samples the next token with the EOB probability multiplied by
    /// `eob_scale` (renormalized) — the paper's footnote-5 "what-if"
    /// post-processing: `eob_scale > 1` simulates smaller batches,
    /// `eob_scale < 1` larger ones, without retraining.
    ///
    /// # Panics
    ///
    /// Panics if `eob_scale` is negative or non-finite.
    pub fn sample_step_scaled(
        &self,
        gen: &mut FlavorGenState,
        period: u64,
        doh_override: Option<u32>,
        eob_scale: f64,
        rng: &mut impl Rng,
    ) -> usize {
        assert!(
            eob_scale >= 0.0 && eob_scale.is_finite(),
            "invalid eob scale {eob_scale}"
        );
        let mut x = Mat::zeros(1, self.space.flavor_input_dim());
        self.space
            .encode_flavor_step(gen.prev, period, doh_override, x.row_mut(0));
        let logits = self.net.step(&x, &mut gen.state);
        let mut probs = logits.row(0).to_vec();
        softmax_inplace(&mut probs);
        probs[self.space.n_flavors] *= eob_scale;
        let tok = sample_categorical(&probs, rng);
        gen.prev = tok;
        tok
    }

    /// [`Self::sample_step_scaled`] with divergence detection: returns
    /// `None` instead of sampling when the network emits a non-finite
    /// logit (a diverged or corrupted model). On `None` the recurrent
    /// state in `gen` has already absorbed the bad step — callers that
    /// fall back to a baseline should restart it with [`Self::begin`].
    ///
    /// # Panics
    ///
    /// Panics if `eob_scale` is negative or non-finite (same contract as
    /// [`Self::sample_step_scaled`]).
    pub fn try_sample_step_scaled(
        &self,
        gen: &mut FlavorGenState,
        period: u64,
        doh_override: Option<u32>,
        eob_scale: f64,
        rng: &mut impl Rng,
    ) -> Option<usize> {
        assert!(
            eob_scale >= 0.0 && eob_scale.is_finite(),
            "invalid eob scale {eob_scale}"
        );
        let mut x = Mat::zeros(1, self.space.flavor_input_dim());
        self.space
            .encode_flavor_step(gen.prev, period, doh_override, x.row_mut(0));
        let logits = self.net.step(&x, &mut gen.state);
        let row = logits.row(0);
        if row.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let mut probs = row.to_vec();
        softmax_inplace(&mut probs);
        probs[self.space.n_flavors] *= eob_scale;
        let tok = sample_categorical(&probs, rng);
        gen.prev = tok;
        Some(tok)
    }
}

/// Epoch-granular trainer for the flavor LSTM.
///
/// Owns everything one epoch needs — network, optimizer moments, the
/// shuffled chunk order, and the loss history — and is serializable as a
/// unit, so the resilience runtime can checkpoint it between epochs, roll it
/// back after divergence, and resume a killed run bit-for-bit (the RNG is
/// external and checkpointed alongside by the caller).
///
/// [`FlavorModel::fit_recorded`] is a thin loop over this type; training
/// behavior (shuffle order, learning-rate schedule, update math) is
/// identical whether or not the resilience layer is involved.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlavorTrainer {
    net: LstmNetwork,
    opt: Adam,
    space: FeatureSpace,
    cfg: TrainConfig,
    chunk_starts: Vec<usize>,
    train_losses: Vec<f64>,
    // Defaulted so checkpoints written before the parallel runtime load
    // as serial (their actual layout).
    #[serde(default)]
    par: Parallelism,
}

impl FlavorTrainer {
    /// Initializes network weights from `rng` and the chunk order from the
    /// stream (the same construction [`FlavorModel::fit`] uses).
    pub fn new(
        stream: &TokenStream,
        space: FeatureSpace,
        cfg: TrainConfig,
        rng: &mut impl Rng,
    ) -> Self {
        // The skip connection gives the "repeat the previous flavor" rule a
        // direct linear path from the input one-hot to the output logits.
        let net = LstmNetwork::with_skip(
            space.flavor_input_dim(),
            cfg.hidden,
            cfg.layers,
            space.flavor_output_dim(),
            rng,
        );
        let opt = Adam::new(AdamConfig {
            lr: cfg.lr,
            weight_decay: cfg.weight_decay,
            clip_norm: Some(cfg.clip_norm),
            ..Default::default()
        });
        let n = stream.tokens.len();
        let l = cfg.seq_len;
        let chunk_starts: Vec<usize> = (0..n.saturating_sub(l - 1)).step_by(l).collect();
        Self {
            net,
            opt,
            space,
            cfg,
            chunk_starts,
            train_losses: Vec::new(),
            par: Parallelism::default(),
        }
    }

    /// Epochs completed so far — the resume cursor.
    pub fn epochs_done(&self) -> usize {
        self.train_losses.len()
    }

    /// The configuration this trainer was built with.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// The data-parallel policy in effect.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Sets the data-parallel policy. The shard layout (`shard_seqs`)
    /// changes the floating-point grouping of the gradient reduction;
    /// the thread count never does.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    /// Mean loss per completed epoch.
    pub fn losses(&self) -> &[f64] {
        &self.train_losses
    }

    /// Runs the next epoch (`epochs_done()`), shuffling the chunk order
    /// with `rng`, scaling the scheduled learning rate by `lr_scale`
    /// (the guard's divergence response; 1.0 = nominal), and emitting one
    /// [`EpochEvent`] on completion.
    ///
    /// A non-finite gradient does not fail the epoch: the optimizer skips
    /// the step ([`StepError`] semantics), the skip is counted, and
    /// `hooks.post_step` sees `skipped = true` so a guard can decide
    /// whether to abort.
    ///
    /// # Errors
    ///
    /// Propagates the first [`TrainAbort`] returned by `hooks.post_step`;
    /// the epoch is then not counted (no loss recorded, no event emitted),
    /// but the network/optimizer have already consumed the aborted epoch's
    /// partial updates — callers that retry must restore a snapshot taken
    /// before the call.
    pub fn run_epoch(
        &mut self,
        stream: &TokenStream,
        lr_scale: f64,
        rng: &mut impl Rng,
        rec: &dyn Recorder,
        hooks: &mut dyn TrainHooks,
    ) -> Result<EpochOutcome, TrainAbort> {
        let _prof = profile::span("epoch");
        let epoch = self.train_losses.len();
        let lr_factor = lr_factor(epoch, self.cfg.epochs);
        self.opt.config_mut().lr = self.cfg.lr * lr_factor * lr_scale;
        self.chunk_starts.shuffle(rng);
        let order = self.chunk_starts.clone();
        let l = self.cfg.seq_len;
        let dim = self.space.flavor_input_dim();
        let pool = WorkerPool::new(self.par.threads);
        let epoch_start = Stopwatch::new();
        let mut epoch_loss = 0.0;
        let mut epoch_count = 0usize;
        let mut norm_sum = 0.0;
        let mut norm_max = 0.0f64;
        let mut opt_steps = 0usize;
        let mut skipped_steps = 0usize;
        let mut shard_ms: Vec<f64> = Vec::new();
        for (step, mb) in order.chunks(self.cfg.minibatch).enumerate() {
            let _prof = profile::span("minibatch");
            let b = mb.len();
            // The loss normalizer is a function of the targets alone, so
            // each shard can scale its own dlogits before backward — the
            // single-shard layout is then bit-identical to the serial
            // trainer.
            let scale = 1.0 / (l * b) as f64;
            let shards = self.par.shards(b);
            let net = &self.net;
            let space = &self.space;
            let results = pool.map(&shards, |_, range| {
                let shard_start = Stopwatch::new();
                let rows = &mb[range.clone()];
                let sb = rows.len();
                // Build inputs and targets: step t of chunk c is token
                // start_c + t, with the previous token as input.
                let mut xs: Vec<Mat> = Vec::with_capacity(l);
                let mut targets: Vec<Vec<usize>> = Vec::with_capacity(l);
                for t in 0..l {
                    let mut x = Mat::zeros(sb, dim);
                    let mut tgt = Vec::with_capacity(sb);
                    for (row, &start) in rows.iter().enumerate() {
                        let idx = start + t;
                        let prev = if idx == 0 {
                            space.n_flavors
                        } else {
                            stream.tokens[idx - 1].id
                        };
                        let period = stream.tokens[idx].period;
                        space.encode_flavor_step(prev, period, None, x.row_mut(row));
                        tgt.push(stream.tokens[idx].id);
                    }
                    xs.push(x);
                    targets.push(tgt);
                }
                let mut local = net.clone();
                local.zero_grad();
                let (logits, cache) = local.forward(&xs);
                let mut sh_loss = 0.0;
                let mut sh_count = 0usize;
                let mut dlogits = Vec::with_capacity(l);
                for (t, logit) in logits.iter().enumerate() {
                    let (loss, count, mut d) = softmax_cross_entropy(logit, &targets[t]);
                    sh_loss += loss;
                    sh_count += count;
                    d.scale(scale);
                    dlogits.push(d);
                }
                local.backward(&cache, &dlogits);
                let grads = GradAccum::take(&mut local);
                let wall = shard_start.elapsed_ms();
                (sh_loss, sh_count, grads, wall)
            });
            let mut mb_loss = 0.0;
            let mut mb_count = 0usize;
            let mut accums = Vec::with_capacity(results.len());
            for (slot, (sh_loss, sh_count, grads, wall)) in results.into_iter().enumerate() {
                mb_loss += sh_loss;
                mb_count += sh_count;
                accums.push(grads);
                if slot >= shard_ms.len() {
                    shard_ms.push(0.0);
                }
                // lint:allow(unordered-reduce): per-slot wall-clock telemetry, accumulated in slot order; never feeds the numeric result
                shard_ms[slot] += wall;
            }
            epoch_loss += mb_loss;
            epoch_count += mb_count;
            if let Some(merged) = nn::accum::tree_reduce(accums) {
                merged.install(&mut self.net);
            }

            let ctx = StepCtx {
                stage: "flavor",
                epoch,
                step,
            };
            let mut params = self.net.params_mut();
            hooks.pre_step(&ctx, &mut params);
            let (grad_norm, skipped) = match self.opt.step(&mut params) {
                Ok(norm) => (norm, false),
                Err(StepError::NonFiniteGradient { norm }) => (norm, true),
            };
            drop(params);
            opt_steps += 1;
            if skipped {
                skipped_steps += 1;
            } else {
                norm_sum += grad_norm;
                norm_max = norm_max.max(grad_norm);
            }
            hooks.post_step(
                &ctx,
                &StepStats {
                    loss: mb_loss / mb_count.max(1) as f64,
                    grad_norm,
                    skipped,
                },
            )?;
        }
        let mean_loss = epoch_loss / epoch_count.max(1) as f64;
        self.train_losses.push(mean_loss);
        let wall_ms = epoch_start.elapsed_ms();
        rec.record(Event::Epoch(EpochEvent {
            stage: "flavor".into(),
            epoch,
            mean_loss,
            grad_norm_pre_clip: norm_sum / opt_steps.saturating_sub(skipped_steps).max(1) as f64,
            grad_norm_pre_clip_max: norm_max,
            lr_factor,
            tokens: epoch_count,
            wall_ms,
            skipped_steps,
        }));
        emit_parallel_telemetry("flavor", epoch_count, wall_ms, &shard_ms, rec);
        Ok(EpochOutcome {
            mean_loss,
            steps: opt_steps,
            skipped_steps,
        })
    }

    /// Finalizes training into a [`FlavorModel`].
    pub fn into_model(self) -> FlavorModel {
        FlavorModel {
            net: self.net,
            space: self.space,
            train_losses: self.train_losses,
        }
    }
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// Non-neural flavor predictors from §5.2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlavorBaseline {
    /// Every token (K flavors + EOB) equally likely.
    Uniform {
        /// Number of flavors `K`.
        n_flavors: usize,
    },
    /// Tokens drawn iid from their empirical training distribution.
    Multinomial {
        /// Probabilities over `K + 1` tokens (EOB last).
        probs: Vec<f64>,
    },
    /// Predicts a repeat of the previous token; falls back to the
    /// multinomial's mode after EOB / at sequence start. Non-probabilistic.
    RepeatFlav {
        /// Empirical token probabilities for the fallback.
        probs: Vec<f64>,
    },
}

impl FlavorBaseline {
    /// Fits the multinomial variant from a training stream.
    pub fn multinomial(train: &TokenStream, n_flavors: usize) -> Self {
        Self::Multinomial {
            probs: token_probs(train, n_flavors),
        }
    }

    /// Fits the repeat-flavor variant (fallback = training multinomial).
    pub fn repeat_flav(train: &TokenStream, n_flavors: usize) -> Self {
        Self::RepeatFlav {
            probs: token_probs(train, n_flavors),
        }
    }

    /// Empirical probabilities over flavors only (EOB excluded,
    /// renormalized) — what the Naive/SimpleBatch generators sample from.
    pub fn flavor_only_probs(&self) -> Vec<f64> {
        match self {
            FlavorBaseline::Uniform { n_flavors } => {
                vec![1.0 / *n_flavors as f64; *n_flavors]
            }
            FlavorBaseline::Multinomial { probs } | FlavorBaseline::RepeatFlav { probs } => {
                let k = probs.len() - 1;
                let total: f64 = probs[..k].iter().sum();
                probs[..k].iter().map(|p| p / total.max(1e-12)).collect()
            }
        }
    }

    /// Teacher-forced evaluation, mirroring [`FlavorModel::evaluate`].
    pub fn evaluate(&self, stream: &TokenStream) -> FlavorEval {
        let n = stream.tokens.len();
        let mut nll_sum = 0.0;
        let mut errors = 0usize;
        let mut has_nll = true;
        for (idx, tok) in stream.tokens.iter().enumerate() {
            match self {
                FlavorBaseline::Uniform { n_flavors } => {
                    let p = 1.0 / (*n_flavors as f64 + 1.0);
                    nll_sum -= p.ln();
                    // Every option ties under a uniform model, so the 1-best
                    // prediction is a uniformly random guess (the paper's
                    // Uniform error is ≈ 1 - 1/(K+1)). Use a deterministic
                    // pseudo-random pick so evaluation is reproducible.
                    let guess = (idx.wrapping_mul(2654435761)) % (*n_flavors + 1);
                    if guess != tok.id {
                        errors += 1;
                    }
                }
                FlavorBaseline::Multinomial { probs } => {
                    nll_sum -= probs[tok.id].max(1e-12).ln();
                    if argmax(probs) != tok.id {
                        errors += 1;
                    }
                }
                FlavorBaseline::RepeatFlav { probs } => {
                    has_nll = false;
                    let k = probs.len() - 1;
                    let prev = if idx == 0 {
                        k
                    } else {
                        stream.tokens[idx - 1].id
                    };
                    let pred = if prev == k { argmax(probs) } else { prev };
                    if pred != tok.id {
                        errors += 1;
                    }
                }
            }
        }
        FlavorEval {
            nll: if has_nll {
                Some(nll_sum / n.max(1) as f64)
            } else {
                None
            },
            one_best_err: errors as f64 / n.max(1) as f64,
            steps: n,
        }
    }
}

/// Empirical token distribution (flavors + EOB) with add-one smoothing.
fn token_probs(stream: &TokenStream, n_flavors: usize) -> Vec<f64> {
    let mut counts = vec![1.0; n_flavors + 1];
    for t in &stream.tokens {
        counts[t.id] += 1.0;
    }
    let total: f64 = counts.iter().sum();
    counts.iter().map(|c| c / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use survival::LifetimeBins;
    use trace::period::TemporalFeaturesSpec;
    use trace::{FlavorCatalog, FlavorId, Job, Trace, UserId};

    fn bins() -> LifetimeBins {
        LifetimeBins::from_uppers(vec![600.0, 3600.0])
    }

    /// A trace with perfectly repetitive structure: each period one user
    /// submits 3 jobs of the same flavor, cycling flavors by period.
    fn repetitive_trace(periods: u64) -> Trace {
        let mut jobs = Vec::new();
        for p in 0..periods {
            let flavor = FlavorId((p % 4) as u16);
            for _ in 0..3 {
                jobs.push(Job {
                    start: p * 300,
                    end: Some(p * 300 + 600),
                    flavor,
                    user: UserId(0),
                });
            }
        }
        Trace::new(jobs, FlavorCatalog::azure16())
    }

    fn space() -> FeatureSpace {
        FeatureSpace::new(16, bins(), TemporalFeaturesSpec::new(2))
    }

    fn stream(periods: u64) -> TokenStream {
        TokenStream::from_trace(&repetitive_trace(periods), &bins(), periods * 300 + 10_000)
    }

    #[test]
    fn lstm_beats_baselines_on_structured_data() {
        let train = stream(400);
        let test = stream(100);
        let mut cfg = TrainConfig::tiny();
        cfg.epochs = 30;
        let model = FlavorModel::fit(&train, space(), cfg);
        let lstm_eval = model.evaluate(&test);
        let multi = FlavorBaseline::multinomial(&train, 16).evaluate(&test);
        let uni = FlavorBaseline::Uniform { n_flavors: 16 }.evaluate(&test);
        let nll = lstm_eval.nll.unwrap();
        assert!(
            nll < multi.nll.unwrap(),
            "lstm {nll} vs multinomial {:?}",
            multi.nll
        );
        assert!(multi.nll.unwrap() < uni.nll.unwrap());
        // Within a batch the next token is fully determined; the LSTM should
        // get most steps right.
        assert!(
            lstm_eval.one_best_err < 0.5,
            "lstm 1-best err {}",
            lstm_eval.one_best_err
        );
    }

    #[test]
    fn training_loss_decreases() {
        let train = stream(300);
        let mut cfg = TrainConfig::tiny();
        cfg.epochs = 4;
        let model = FlavorModel::fit(&train, space(), cfg);
        let first = model.train_losses.first().unwrap();
        let last = model.train_losses.last().unwrap();
        assert!(last < first, "losses: {:?}", model.train_losses);
    }

    #[test]
    fn fit_recorded_emits_one_epoch_event_per_epoch() {
        let train = stream(300);
        let mut cfg = TrainConfig::tiny();
        cfg.epochs = 5;
        let rec = obsv::MemoryRecorder::new();
        let model = FlavorModel::fit_recorded(&train, space(), cfg, &rec);
        let epochs = rec.epochs();
        assert_eq!(epochs.len(), cfg.epochs);
        for (i, e) in epochs.iter().enumerate() {
            assert_eq!(e.stage, "flavor");
            assert_eq!(e.epoch, i);
            assert!(e.mean_loss.is_finite());
            assert!(e.grad_norm_pre_clip > 0.0, "grad norm not surfaced");
            assert!(e.grad_norm_pre_clip_max >= e.grad_norm_pre_clip - 1e-12);
            assert!(e.tokens > 0);
            assert!(e.wall_ms >= 0.0);
        }
        // Events mirror the loss trajectory, which must not increase
        // first-to-last on this structured stream.
        for (l, e) in model.train_losses.iter().zip(&epochs) {
            assert!((l - e.mean_loss).abs() < 1e-12);
        }
        assert!(epochs.last().unwrap().mean_loss <= epochs.first().unwrap().mean_loss);
    }

    #[test]
    fn sharded_training_bit_identical_across_thread_counts() {
        let train = stream(120);
        let mut cfg = TrainConfig::tiny();
        cfg.epochs = 2;
        let fit_with = |par: Parallelism| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
            let mut tr = FlavorTrainer::new(&train, space(), cfg, &mut rng);
            tr.set_parallelism(par);
            for _ in 0..cfg.epochs {
                tr.run_epoch(&train, 1.0, &mut rng, &NullRecorder, &mut NoHooks)
                    .unwrap();
            }
            tr
        };
        // Same shard layout, different worker counts: weights and the
        // loss trajectory must agree bit-for-bit.
        let mut serial = fit_with(Parallelism::with_threads(1, 2));
        let mut multi = fit_with(Parallelism::with_threads(4, 2));
        assert_eq!(serial.train_losses, multi.train_losses);
        for (a, b) in serial
            .net
            .params_mut()
            .iter()
            .zip(multi.net.params_mut().iter())
        {
            for (x, y) in a.value.as_slice().iter().zip(b.value.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn uniform_nll_is_log_k_plus_one() {
        let test = stream(50);
        let eval = FlavorBaseline::Uniform { n_flavors: 16 }.evaluate(&test);
        assert!((eval.nll.unwrap() - 17.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn repeat_flav_has_no_nll_but_low_error_on_repetitive_data() {
        let train = stream(100);
        let test = stream(50);
        let eval = FlavorBaseline::repeat_flav(&train, 16).evaluate(&test);
        assert!(eval.nll.is_none());
        // Each batch: f f f EOB. RepeatFlav gets the 2nd/3rd flavor right,
        // misses EOB and the post-EOB flavor: error ~ 2/4.
        assert!(eval.one_best_err < 0.6, "err {}", eval.one_best_err);
    }

    #[test]
    fn sampling_generates_valid_tokens_and_eobs() {
        let train = stream(200);
        let model = FlavorModel::fit(&train, space(), TrainConfig::tiny());
        let mut rng = StdRng::seed_from_u64(3);
        let mut gen = model.begin();
        let mut saw_eob = false;
        for _ in 0..200 {
            let tok = model.sample_step(&mut gen, 5, Some(0), &mut rng);
            assert!(tok <= 16);
            if tok == 16 {
                saw_eob = true;
            }
        }
        assert!(saw_eob, "no EOB in 200 sampled tokens");
    }

    #[test]
    fn flavor_only_probs_renormalize() {
        let train = stream(100);
        let b = FlavorBaseline::multinomial(&train, 16);
        let p = b.flavor_only_probs();
        assert_eq!(p.len(), 16);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip_preserves_eval() {
        let train = stream(120);
        let test = stream(30);
        let model = FlavorModel::fit(&train, space(), TrainConfig::tiny());
        let json = serde_json::to_string(&model).unwrap();
        let model2: FlavorModel = serde_json::from_str(&json).unwrap();
        let a = model.evaluate(&test);
        let b = model2.evaluate(&test);
        assert!((a.nll.unwrap() - b.nll.unwrap()).abs() < 1e-12);
    }
}
