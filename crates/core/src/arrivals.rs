//! Stage 1: the batch-arrival model (§2.1).
//!
//! An inhomogeneous Poisson regression over the period's temporal features
//! (hour-of-day, day-of-week one-hot; day-of-history survival-encoded).
//! When generating beyond the training window, the day-of-history feature is
//! chosen by a [`DohStrategy`] — the paper's geometric sampling is what lets
//! generated futures vary like the recent past.

use glm::samplers::sample_poisson;
use glm::{DohStrategy, ElasticNet, PoissonFitError, PoissonRegression};
use linalg::Mat;
use rand::Rng;
use serde::{Deserialize, Serialize};
use trace::batch::{batch_counts, job_counts, organize_periods};
use trace::period::{TemporalFeaturesSpec, TemporalInfo, PERIOD_SECS};
use trace::Trace;

/// What the regression counts per period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalTarget {
    /// Per-user batches (the paper's stage 1).
    Batches,
    /// Individual jobs (the traditional baseline evaluated in §5.1/Fig. 6).
    Jobs,
}

/// A fitted arrival model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchArrivalModel {
    regression: PoissonRegression,
    temporal: TemporalFeaturesSpec,
    /// Last day index seen in training (DOH sampling anchors here).
    last_train_day: u32,
    doh: DohStrategy,
    target: ArrivalTarget,
}

impl BatchArrivalModel {
    /// Fits the arrival model on a training trace.
    ///
    /// `train_secs` is the training-window length (the trace's own clock
    /// starts at 0); every period in `[0, train_secs / 300)` becomes one
    /// regression row, including empty ones.
    pub fn fit(
        train: &Trace,
        train_secs: u64,
        target: ArrivalTarget,
        temporal: TemporalFeaturesSpec,
        penalty: ElasticNet,
        doh: DohStrategy,
    ) -> Result<Self, PoissonFitError> {
        let n_periods = train_secs / PERIOD_SECS;
        let periods = organize_periods(train);
        let y = match target {
            ArrivalTarget::Batches => batch_counts(&periods, n_periods),
            ArrivalTarget::Jobs => job_counts(&periods, n_periods),
        };
        let mut x = Mat::zeros(n_periods as usize, temporal.dim());
        for p in 0..n_periods {
            let info = TemporalInfo::of_period(p);
            temporal.encode_into(info, None, x.row_mut(p as usize));
        }
        let regression = PoissonRegression::fit(&x, &y, penalty, 30, 1e-7)?;
        let last_train_day = TemporalInfo::of_period(n_periods.saturating_sub(1)).day_of_history();
        Ok(Self {
            regression,
            temporal,
            last_train_day,
            doh,
            target,
        })
    }

    /// The Poisson rate for a period, with an optional day-of-history
    /// override (pass the sampled DOH day when generating a future period).
    pub fn rate(&self, period: u64, doh_override: Option<u32>) -> f64 {
        let info = TemporalInfo::of_period(period);
        let x = self.temporal.encode(info, doh_override);
        self.regression.rate(&x)
    }

    /// Samples a DOH day according to the model's strategy.
    pub fn sample_doh_day(&self, rng: &mut impl Rng) -> u32 {
        self.doh.sample_day(self.last_train_day, rng)
    }

    /// Samples an arrival count for a period: draws a DOH day, computes the
    /// rate, then draws from the Poisson. `scale` multiplies the rate (the
    /// 10× stress-test knob from §6.2).
    pub fn sample_count(&self, period: u64, scale: f64, rng: &mut impl Rng) -> u64 {
        let day = self.sample_doh_day(rng);
        sample_poisson(self.rate(period, Some(day)) * scale, rng)
    }

    /// Samples a count with a caller-chosen DOH day (used when one day should
    /// drive a whole sampled trace).
    pub fn sample_count_with_day(
        &self,
        period: u64,
        day: u32,
        scale: f64,
        rng: &mut impl Rng,
    ) -> u64 {
        sample_poisson(self.rate(period, Some(day)) * scale, rng)
    }

    /// The regression target the model was fitted on.
    pub fn target(&self) -> ArrivalTarget {
        self.target
    }

    /// The last training day (DOH anchor).
    pub fn last_train_day(&self) -> u32 {
        self.last_train_day
    }

    /// The DOH strategy.
    pub fn doh_strategy(&self) -> DohStrategy {
        self.doh
    }

    /// Replaces the DOH strategy (for the sampled-vs-last-day ablation).
    pub fn set_doh_strategy(&mut self, doh: DohStrategy) {
        self.doh = doh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trace::{FlavorCatalog, FlavorId, Job, UserId};

    /// A trace with a strong diurnal pattern: 6 jobs/period in hour 12, 1
    /// job/period in hour 0, across 4 days.
    fn diurnal_trace() -> (Trace, u64) {
        let mut jobs = Vec::new();
        let days = 4u64;
        for day in 0..days {
            for hour in [0u64, 12] {
                for slot in 0..12 {
                    let t = day * 86_400 + hour * 3600 + slot * 300;
                    let n = if hour == 12 { 6 } else { 1 };
                    for u in 0..n {
                        jobs.push(Job {
                            start: t,
                            end: Some(t + 600),
                            flavor: FlavorId(0),
                            user: UserId(u),
                        });
                    }
                }
            }
        }
        jobs.sort_by_key(|j| j.start);
        (Trace::new(jobs, FlavorCatalog::azure16()), days * 86_400)
    }

    #[test]
    fn learns_diurnal_pattern() {
        let (t, secs) = diurnal_trace();
        let m = BatchArrivalModel::fit(
            &t,
            secs,
            ArrivalTarget::Batches,
            TemporalFeaturesSpec::new(4),
            ElasticNet::ridge(0.1),
            DohStrategy::LastDay,
        )
        .unwrap();
        // Hour 12 of a training day vs hour 0: each user is one batch, so
        // rates should approach 6 and 1.
        let noon = m.rate(12 * 12, None);
        let midnight = m.rate(0, None);
        assert!(noon > 3.0 * midnight, "noon {noon} vs midnight {midnight}");
    }

    #[test]
    fn jobs_target_counts_jobs_not_batches() {
        // One user submitting 3 jobs per period: 1 batch but 3 jobs.
        let mut jobs = Vec::new();
        for p in 0..288u64 {
            for _ in 0..3 {
                jobs.push(Job {
                    start: p * 300,
                    end: Some(p * 300 + 300),
                    flavor: FlavorId(0),
                    user: UserId(0),
                });
            }
        }
        let t = Trace::new(jobs, FlavorCatalog::azure16());
        let spec = TemporalFeaturesSpec::without_doh();
        let batches = BatchArrivalModel::fit(
            &t,
            86_400,
            ArrivalTarget::Batches,
            spec,
            ElasticNet::ridge(0.1),
            DohStrategy::LastDay,
        )
        .unwrap();
        let jobs_m = BatchArrivalModel::fit(
            &t,
            86_400,
            ArrivalTarget::Jobs,
            spec,
            ElasticNet::ridge(0.1),
            DohStrategy::LastDay,
        )
        .unwrap();
        let rb = batches.rate(6, None);
        let rj = jobs_m.rate(6, None);
        assert!((rb - 1.0).abs() < 0.3, "batch rate {rb}");
        assert!((rj - 3.0).abs() < 0.6, "job rate {rj}");
    }

    #[test]
    fn sample_count_scales() {
        let (t, secs) = diurnal_trace();
        let m = BatchArrivalModel::fit(
            &t,
            secs,
            ArrivalTarget::Batches,
            TemporalFeaturesSpec::new(4),
            ElasticNet::ridge(0.1),
            DohStrategy::LastDay,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 2000;
        let base: f64 = (0..n)
            .map(|_| m.sample_count(12 * 12, 1.0, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        let scaled: f64 = (0..n)
            .map(|_| m.sample_count(12 * 12, 10.0, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!(scaled > base * 7.0, "10x scaling: {base} -> {scaled}");
    }

    #[test]
    fn last_train_day_recorded() {
        let (t, secs) = diurnal_trace();
        let m = BatchArrivalModel::fit(
            &t,
            secs,
            ArrivalTarget::Batches,
            TemporalFeaturesSpec::new(4),
            ElasticNet::ridge(0.1),
            DohStrategy::paper_default(),
        )
        .unwrap();
        assert_eq!(m.last_train_day(), 3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(m.sample_doh_day(&mut rng) <= 3);
        }
    }
}
