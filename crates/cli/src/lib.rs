//! Library backing the `cloudgen` command-line tool.
//!
//! The CLI wraps the full workflow a practitioner needs to run the paper's
//! pipeline on their own data:
//!
//! - `train`: fit the three-stage generator on a CSV trace and save the
//!   model as JSON;
//! - `generate`: sample future trace(s) from a saved model;
//! - `summarize`: print workload statistics for a trace;
//! - `demo-trace`: emit a synthetic provider trace (for trying the tool
//!   without production data).
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to stay within the
//! sanctioned dependency set.

#![forbid(unsafe_code)]

use cloudgen::lifetimes::LifetimeHead;
use cloudgen::{
    ArrivalTarget, BatchArrivalModel, FeatureSpace, FlavorModel, GenFallback, GeneratorConfig,
    LifetimeModel, Parallelism, TokenStream, TraceGenerator, TrainConfig,
};
use glm::{DohStrategy, ElasticNet};
use obsv::{
    Event, JsonlRecorder, MemoryRecorder, Profiler, Recorder, RunReport, SpanTimer, Stopwatch,
};
use resilience::{fit_flavor_resilient_par, fit_lifetime_resilient_par, FaultPlan, ResilienceConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use survival::LifetimeBins;
use synth::{CloudWorld, WorldConfig};
use trace::period::{TemporalFeaturesSpec, PERIOD_SECS};
use trace::FlavorCatalog;

/// Days per generated-feature history (derived from the trace horizon).
const DAY: u64 = 86_400;

/// Sequences per gradient shard when training through the CLI.
///
/// Fixed — deliberately NOT derived from `--threads` — so that any worker
/// count produces byte-identical models and checkpoints: the shard layout
/// determines the floating-point grouping of the gradient reduction, the
/// thread count only parallelizes the map over shards.
const CLI_SHARD_SEQS: usize = 2;

/// Parses `--threads N` (default 1, clamped to at least 1).
fn parse_parallelism(args: &Args) -> Result<Parallelism, CliError> {
    let threads: usize = args.num("threads", 1)?;
    Ok(Parallelism::with_threads(threads.max(1), CLI_SHARD_SEQS))
}

/// CLI error: message plus a hint about usage.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("io error: {e}"))
    }
}

/// Parsed `--key value` arguments.
#[derive(Debug, Default, Clone)]
pub struct Args {
    map: BTreeMap<String, String>,
}

impl Args {
    /// Parses `--key value` pairs; a `--switch` followed by another option
    /// (or nothing) is a boolean flag, stored as `"true"`.
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut map = BTreeMap::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i]
                .strip_prefix("--")
                .ok_or_else(|| CliError(format!("expected --flag, got {:?}", argv[i])))?;
            match argv.get(i + 1) {
                Some(value) if !value.starts_with("--") => {
                    map.insert(key.to_string(), value.clone());
                    i += 2;
                }
                _ => {
                    map.insert(key.to_string(), "true".to_string());
                    i += 1;
                }
            }
        }
        Ok(Self { map })
    }

    /// Required string argument.
    pub fn req(&self, key: &str) -> Result<&str, CliError> {
        self.map
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError(format!("missing required --{key}")))
    }

    /// Optional string argument.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// True if the boolean switch `--key` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// Optional numeric argument with default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("--{key}: cannot parse {v:?}"))),
        }
    }
}

/// Tees telemetry into an in-memory buffer (backing `--report`) and,
/// optionally, a JSONL file (backing `--telemetry`).
struct CliSink<'a> {
    mem: &'a MemoryRecorder,
    jsonl: Option<&'a JsonlRecorder>,
}

impl Recorder for CliSink<'_> {
    fn record(&self, event: Event) {
        if let Some(j) = self.jsonl {
            j.record(event.clone());
        }
        self.mem.record(event);
    }
}

/// Opens the `--telemetry` sink if requested. `append` controls whether an
/// existing file is extended (generate) or truncated (train).
fn open_telemetry(args: &Args, append: bool) -> Result<Option<JsonlRecorder>, CliError> {
    match args.opt("telemetry") {
        None => Ok(None),
        Some(path) => {
            let rec = if append {
                JsonlRecorder::append(path)?
            } else {
                JsonlRecorder::create(path)?
            };
            Ok(Some(rec))
        }
    }
}

/// Hierarchical profiling session behind `--profile-trace out.json`.
///
/// While alive, `obsv::profile` spans opened on this thread (and on worker
/// threads via pool handoff) are collected; [`ProfileSession::finish`]
/// writes the Chrome `trace_event` file and flushes span/counter events
/// into the telemetry stream so `--report` gains its profile section.
struct ProfileSession {
    profiler: Profiler,
    guard: Option<obsv::profile::ActivationGuard>,
    out: PathBuf,
}

impl ProfileSession {
    /// Starts profiling if `--profile-trace` was given.
    fn start(args: &Args) -> Option<Self> {
        args.opt("profile-trace").map(|path| {
            let profiler = Profiler::new();
            let guard = profiler.activate("main");
            Self {
                profiler,
                guard: Some(guard),
                out: PathBuf::from(path),
            }
        })
    }

    /// Deactivates, writes the trace file, and flushes profile telemetry.
    /// Returns a line for the command's output message.
    fn finish(mut self, rec: &dyn Recorder) -> Result<String, CliError> {
        drop(self.guard.take());
        self.profiler
            .write_chrome_trace(&self.out)
            .map_err(|e| CliError(format!("writing {}: {e}", self.out.display())))?;
        self.profiler.flush_events(rec);
        Ok(format!("\nprofile trace: {}", self.out.display()))
    }
}

/// Appends the `--report` table to a command's output when requested.
fn maybe_report(args: &Args, mem: &MemoryRecorder, mut msg: String) -> String {
    if args.flag("report") {
        let report = RunReport::from_events(&mem.events());
        msg.push_str("\n\n");
        msg.push_str(&report.render_table());
    }
    msg
}

/// A saved model bundle: generator weights plus the catalog it expects.
#[derive(Serialize, Deserialize)]
pub struct ModelBundle {
    /// The trained three-stage generator.
    pub generator: TraceGenerator,
    /// The flavor catalog the model was trained against.
    pub catalog: FlavorCatalog,
    /// End of the training history, seconds (generation starts here).
    pub horizon: u64,
}

/// True when `dir` already holds checkpoint files from a previous run.
fn has_checkpoints(dir: &Path) -> bool {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .any(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
        })
        .unwrap_or(false)
}

/// `train --trace t.csv --catalog c.json --out model.json [--epochs N]
/// [--hidden N] [--horizon secs] [--threads N] [--checkpoint-dir d]
/// [--checkpoint-every N] [--max-retries N] [--resume]
/// [--telemetry run.jsonl] [--report]`
///
/// `--threads` sizes the worker pool for the LSTM epoch loops. The shard
/// layout is fixed ([`CLI_SHARD_SEQS`]), so any thread count produces
/// byte-identical models and checkpoints — only wall-clock time changes.
///
/// With `--checkpoint-dir`, both LSTM stages run under the resilience
/// runtime: training state is checkpointed atomically every
/// `--checkpoint-every` epochs, divergent epochs are rolled back and
/// retried at a halved learning rate (up to `--max-retries` times), and a
/// killed run can be continued bit-for-bit with `--resume`.
pub fn cmd_train(args: &Args) -> Result<String, CliError> {
    let started = Stopwatch::new();
    let trace_path = args.req("trace")?;
    let out = args.req("out")?;
    let catalog = load_catalog(args)?;
    let file = std::fs::File::open(trace_path)?;
    let train = trace::io::read_csv(file, catalog.clone())
        .map_err(|e| CliError(format!("reading {trace_path}: {e}")))?;
    if train.is_empty() {
        return Err(CliError("training trace is empty".into()));
    }
    let horizon = args.num("horizon", train.last_start() + PERIOD_SECS)?;
    let days = horizon.div_ceil(DAY).max(1);

    let bins = LifetimeBins::paper_47();
    let temporal = TemporalFeaturesSpec::new(days as usize);
    let space = FeatureSpace::new(catalog.len(), bins.clone(), temporal);
    let stream = TokenStream::from_trace(&train, &bins, horizon);
    let cfg = TrainConfig {
        hidden: args.num("hidden", 48)?,
        epochs: args.num("epochs", 24)?,
        ..TrainConfig::default()
    };
    let par = parse_parallelism(args)?;

    let mem = MemoryRecorder::new();
    let jsonl = open_telemetry(args, false)?;
    let rec = CliSink {
        mem: &mem,
        jsonl: jsonl.as_ref(),
    };
    let prof = ProfileSession::start(args);

    let arrivals_span = SpanTimer::start("arrivals_fit");
    let arrivals = BatchArrivalModel::fit(
        &train,
        horizon,
        ArrivalTarget::Batches,
        temporal,
        ElasticNet::ridge(1.0),
        DohStrategy::paper_default(),
    )
    .map_err(|e| CliError(format!("arrival fit: {e}")))?;
    arrivals_span.finish(&rec);

    let checkpoint_dir = args.opt("checkpoint-dir").map(PathBuf::from);
    let mut resilience_note = String::new();
    let (flavors, lifetimes) = match &checkpoint_dir {
        Some(dir) => {
            if has_checkpoints(dir) && !args.flag("resume") {
                return Err(CliError(format!(
                    "{} already holds checkpoints from a previous run; \
                     pass --resume to continue it, or point --checkpoint-dir \
                     at a fresh directory",
                    dir.display()
                )));
            }
            let rcfg = ResilienceConfig {
                checkpoint_dir: Some(dir.clone()),
                checkpoint_every: args.num("checkpoint-every", 1)?,
                max_retries: args.num("max-retries", 3)?,
                ..ResilienceConfig::default()
            };
            let fl = fit_flavor_resilient_par(&stream, &space, cfg, par, &rcfg, &mut FaultPlan::none(), &rec)
                .map_err(|e| {
                    CliError(format!("flavor training failed: {e}; re-run with --resume to continue from the last checkpoint"))
                })?;
            let lt = fit_lifetime_resilient_par(&stream, &space, cfg, par, &rcfg, &mut FaultPlan::none(), &rec)
                .map_err(|e| {
                    CliError(format!("lifetime training failed: {e}; re-run with --resume to continue from the last checkpoint"))
                })?;
            for (stage, o) in [("flavor", (fl.resumed_from, fl.rollbacks, fl.checkpoints_saved)),
                               ("lifetime", (lt.resumed_from, lt.rollbacks, lt.checkpoints_saved))] {
                let (resumed, rollbacks, saved) = o;
                resilience_note.push_str(&format!(
                    "\n{stage}: {} checkpoints saved, {rollbacks} rollbacks{}",
                    saved,
                    match resumed {
                        Some(e) => format!(", resumed from epoch {e}"),
                        None => String::new(),
                    }
                ));
            }
            (fl.model, lt.model)
        }
        None => (
            FlavorModel::fit_par_recorded(&stream, space.clone(), cfg, par, &rec),
            LifetimeModel::fit_par_recorded(
                &stream,
                space.clone(),
                cfg,
                LifetimeHead::Hazard,
                par,
                &rec,
            ),
        ),
    };
    let generator = TraceGenerator {
        arrivals,
        fallback: Some(GenFallback::fit(&stream, &space)),
        flavors,
        lifetimes,
        config: GeneratorConfig::default(),
    };
    let bundle = ModelBundle {
        generator,
        catalog,
        horizon,
    };
    let json = serde_json::to_string(&bundle).map_err(|e| CliError(format!("serialize: {e}")))?;
    std::fs::write(out, json)?;
    let mut msg = format!(
        "trained on {} jobs ({} days) in {} ms; model saved to {out}{resilience_note}",
        train.len(),
        days,
        started.elapsed_ms() as u64
    );
    if let Some(j) = &jsonl {
        msg.push_str(&format!("\ntelemetry: {}", j.path().display()));
    }
    if let Some(p) = prof {
        msg.push_str(&p.finish(&rec)?);
    }
    Ok(maybe_report(args, &mem, msg))
}

/// `generate --model model.json --periods N --out trace.csv [--seed S]
/// [--threads N] [--scale X] [--eob-scale X] [--max-fallback N]
/// [--telemetry run.jsonl] [--report]`
///
/// Sampling is sharded by simulated day with per-shard seed streams
/// derived from `--seed`, so the trace depends only on the seed — never
/// on `--threads`.
///
/// `--telemetry` appends, so pointing it at the file `train` wrote yields
/// one JSONL covering the whole train-then-generate run. When an LSTM
/// emits non-finite output, the affected batch falls back to the model's
/// independence baselines; `--max-fallback` bounds how many batches may
/// degrade that way before the run fails outright.
pub fn cmd_generate(args: &Args) -> Result<String, CliError> {
    let started = Stopwatch::new();
    let model_path = args.req("model")?;
    let out = args.req("out")?;
    let n_periods: u64 = args.num("periods", 288)?;
    let json = std::fs::read_to_string(model_path)?;
    let mut bundle: ModelBundle =
        serde_json::from_str(&json).map_err(|e| CliError(format!("loading model: {e}")))?;
    bundle.generator.config.scale = args.num("scale", 1.0)?;
    bundle.generator.config.eob_scale = args.num("eob-scale", 1.0)?;
    bundle.generator.config.max_fallback_batches =
        args.num("max-fallback", bundle.generator.config.max_fallback_batches)?;

    let mem = MemoryRecorder::new();
    let jsonl = open_telemetry(args, true)?;
    let rec = CliSink {
        mem: &mem,
        jsonl: jsonl.as_ref(),
    };
    let prof = ProfileSession::start(args);

    let first_period = bundle.horizon.div_ceil(PERIOD_SECS);
    let seed: u64 = args.num("seed", 7u64)?;
    let threads: usize = args.num("threads", 1)?;
    let generated = bundle
        .generator
        .try_generate_par_recorded(
            first_period,
            n_periods,
            &bundle.catalog,
            seed,
            threads.max(1),
            &rec,
        )
        .map_err(|e| CliError(format!("generation failed: {e}")))?;
    let mut file = std::fs::File::create(out)?;
    trace::io::write_csv(&generated, &mut file)
        .map_err(|e| CliError(format!("writing {out}: {e}")))?;
    let mut msg = format!(
        "generated {} jobs over {} periods starting at period {} in {} ms; written to {out}",
        generated.len(),
        n_periods,
        first_period,
        started.elapsed_ms() as u64
    );
    if let Some(j) = &jsonl {
        msg.push_str(&format!("\ntelemetry: {}", j.path().display()));
    }
    if let Some(p) = prof {
        msg.push_str(&p.finish(&rec)?);
    }
    Ok(maybe_report(args, &mem, msg))
}

/// `summarize --trace t.csv --catalog c.json [--horizon secs]`
pub fn cmd_summarize(args: &Args) -> Result<String, CliError> {
    let trace_path = args.req("trace")?;
    let catalog = load_catalog(args)?;
    let file = std::fs::File::open(trace_path)?;
    let t = trace::io::read_csv(file, catalog)
        .map_err(|e| CliError(format!("reading {trace_path}: {e}")))?;
    let horizon = args.num("horizon", t.last_start() + PERIOD_SECS)?;
    let s = trace::summarize(&t, horizon);
    let momentum = trace::analysis::consecutive_flavor_repeat_rate(&t);
    Ok(format!(
        "jobs: {}\nbatches: {} (mean size {:.2}, max {})\nactive periods: {}\n\
         censored: {:.1}%\nlifetime quantiles (h): p25 {:.2} / p50 {:.2} / p90 {:.2} / p99 {:.2}\n\
         flavor entropy: {:.2} bits (top flavor {:.1}%)\nflavor momentum: {:.2}",
        s.jobs,
        s.batches,
        s.mean_batch_size,
        s.max_batch_size,
        s.active_periods,
        s.censored_fraction * 100.0,
        s.lifetime_quantiles.0 / 3600.0,
        s.lifetime_quantiles.1 / 3600.0,
        s.lifetime_quantiles.2 / 3600.0,
        s.lifetime_quantiles.3 / 3600.0,
        s.flavor_entropy_bits,
        s.top_flavor_share * 100.0,
        momentum,
    ))
}

/// `demo-trace --out t.csv [--days N] [--seed S] [--world azure|huawei]`
/// Also writes the matching catalog next to it (`<out>.catalog.json`).
pub fn cmd_demo_trace(args: &Args) -> Result<String, CliError> {
    let out = args.req("out")?;
    let days: u32 = args.num("days", 5)?;
    let seed: u64 = args.num("seed", 7)?;
    let world = match args.opt("world").unwrap_or("azure") {
        "azure" => CloudWorld::new(WorldConfig::azure_like(0.5), seed),
        "huawei" => CloudWorld::new(WorldConfig::huawei_like(0.5), seed),
        other => return Err(CliError(format!("unknown world {other:?}"))),
    };
    let t = world.generate(days);
    let mut file = std::fs::File::create(out)?;
    trace::io::write_csv(&t, &mut file).map_err(|e| CliError(format!("writing {out}: {e}")))?;
    let cat_path = format!("{out}.catalog.json");
    let cat_json = serde_json::to_string(world.catalog())
        .map_err(|e| CliError(format!("serialize catalog: {e}")))?;
    std::fs::write(&cat_path, cat_json)?;
    Ok(format!(
        "wrote {} jobs over {days} days to {out} (catalog: {cat_path})",
        t.len()
    ))
}

/// `serve --model model.json [--addr HOST:PORT] [--workers N]
/// [--queue-cap N] [--deadline-ms MS] [--threads N]`
///
/// Loads the bundle once and serves `GET /generate` until an operator
/// hits `GET /drain`; queued and in-flight requests finish, then the
/// command returns the final serving stats. Trace responses are
/// byte-identical to `cloudgen generate` for the same model, seed, and
/// parameters.
pub fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let model_path = args.req("model")?;
    let json = std::fs::read_to_string(model_path)?;
    let bundle: ModelBundle =
        serde_json::from_str(&json).map_err(|e| CliError(format!("loading model: {e}")))?;
    let mut cfg = serve::ServeConfig::default();
    cfg.addr = args.opt("addr").unwrap_or(&cfg.addr).to_string();
    cfg.workers = args.num("workers", cfg.workers)?;
    cfg.queue_cap = args.num("queue-cap", cfg.queue_cap)?;
    cfg.default_deadline_ms = args.num("deadline-ms", cfg.default_deadline_ms)?;
    cfg.gen_threads = args.num("threads", cfg.gen_threads)?;
    let model = serve::ServeModel {
        generator: bundle.generator,
        catalog: bundle.catalog,
        horizon: bundle.horizon,
    };
    let handle = serve::Server::start(cfg, model, resilience::RequestFaultPlan::none())
        .map_err(|e| CliError(format!("starting server: {e}")))?;
    println!("cloudgen-serve listening on {}", handle.addr());
    println!("drain with: curl http://{}/drain", handle.addr());
    while !(handle.is_draining() && handle.pending() == 0) {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let stats = handle.join();
    Ok(format!("drained; final stats:\n{}", stats.to_json()))
}

/// `report run.jsonl [--json]` — aggregate a telemetry file into a run
/// report (text table, or JSON with `--json`).
pub fn cmd_report(path: &str, as_json: bool) -> Result<String, CliError> {
    let events = obsv::read_jsonl(path)?;
    let report = RunReport::from_events(&events);
    if as_json {
        Ok(report.to_json())
    } else {
        Ok(report.render_table())
    }
}

fn load_catalog(args: &Args) -> Result<FlavorCatalog, CliError> {
    match args.opt("catalog") {
        Some(path) => {
            let json = std::fs::read_to_string(path)?;
            serde_json::from_str(&json).map_err(|e| CliError(format!("loading catalog: {e}")))
        }
        None => Ok(FlavorCatalog::azure16()),
    }
}

/// Dispatches a subcommand; returns its report line(s).
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let (cmd, rest) = argv
        .split_first()
        .ok_or_else(|| CliError(usage().into()))?;
    if cmd == "report" {
        // `report` is the one subcommand taking a positional argument (the
        // telemetry file); `--file path` works too.
        let (path, args) = match rest.split_first() {
            Some((p, more)) if !p.starts_with("--") => (p.clone(), Args::parse(more)?),
            _ => {
                let args = Args::parse(rest)?;
                let p = args
                    .opt("file")
                    .ok_or_else(|| {
                        CliError(
                            "report needs a telemetry file: `report run.jsonl` \
                             or `report --file run.jsonl`"
                                .into(),
                        )
                    })?
                    .to_string();
                (p, args)
            }
        };
        return cmd_report(&path, args.flag("json"));
    }
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "train" => cmd_train(&args),
        "generate" => cmd_generate(&args),
        "summarize" => cmd_summarize(&args),
        "demo-trace" => cmd_demo_trace(&args),
        "serve" => cmd_serve(&args),
        "help" | "--help" | "-h" => Ok(usage().into()),
        other => Err(CliError(format!("unknown command {other:?}\n{}", usage()))),
    }
}

/// Usage text.
pub fn usage() -> &'static str {
    "cloudgen — RNN-based cloud workload generation (SOSP'21 reproduction)

USAGE:
  cloudgen demo-trace --out t.csv [--days N] [--seed S] [--world azure|huawei]
  cloudgen summarize  --trace t.csv [--catalog c.json] [--horizon secs]
  cloudgen train      --trace t.csv --out model.json [--catalog c.json]
                      [--epochs N] [--hidden N] [--horizon secs]
                      [--threads N] [--checkpoint-dir d]
                      [--checkpoint-every N] [--max-retries N] [--resume]
                      [--telemetry run.jsonl] [--report]
                      [--profile-trace prof.json]
  cloudgen generate   --model model.json --out future.csv [--periods N]
                      [--seed S] [--threads N] [--scale X] [--eob-scale X]
                      [--max-fallback N]
                      [--telemetry run.jsonl] [--report]
                      [--profile-trace prof.json]
  cloudgen serve      --model model.json [--addr HOST:PORT] [--workers N]
                      [--queue-cap N] [--deadline-ms MS] [--threads N]
  cloudgen report     run.jsonl [--json]

`--threads N` (default 1) sizes the data-parallel worker pool for both
training and generation. Results are byte-identical for every thread
count: training shards each minibatch under a fixed layout and reduces
gradients in fixed tree order, generation shards the horizon by simulated
day with per-shard seed streams. Only wall-clock time changes.

`--telemetry` streams per-epoch training events (loss, pre-clip gradient
norms, wall time) and per-day generation throughput to a JSONL file;
train truncates the file, generate appends, so pointing both at one path
yields a single run log. `--report` prints an aggregated run report after
the command; `report` rebuilds that report from a saved JSONL file.

`--profile-trace prof.json` records a hierarchical kernel-level profile
(train → epoch → minibatch → gemm/lstm spans, worker lanes, flop and byte
counts) and writes it as a Chrome `trace_event` file — open it at
chrome://tracing or https://ui.perfetto.dev. Combined with `--report`,
the run report gains a per-span self-time/GFLOP-s section. Profiling
never changes numeric results; expect a modest wall-clock overhead.

`--checkpoint-dir` turns on the fault-tolerant training runtime: LSTM
training state (weights, Adam moments, RNG position, epoch cursor) is
checkpointed atomically every `--checkpoint-every` epochs (default 1),
divergent epochs roll back and retry at a halved learning rate (up to
`--max-retries` times, default 3), and an interrupted run continues
bit-for-bit with `--resume`. `--max-fallback` bounds how many generated
batches may degrade to the independence baselines when an LSTM emits
non-finite output (default 1000).

`serve` turns a trained bundle into a fault-tolerant HTTP service
(`cloudgen-serve` is the standalone binary): bounded admission with typed
`429 Overloaded` shedding, per-request deadlines and degradation budgets,
watchdog-cancelled stalls, and graceful drain via `GET /drain`. Trace
responses are byte-identical to `cloudgen generate` for the same model
and parameters.

Trace CSV format: header `start,end,flavor,user`; seconds since epoch,
empty end = still running (censored)."
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn args_parse_pairs() {
        let a = Args::parse(&argv(&["--trace", "t.csv", "--epochs", "3"])).unwrap();
        assert_eq!(a.req("trace").unwrap(), "t.csv");
        assert_eq!(a.num("epochs", 0usize).unwrap(), 3);
        assert_eq!(a.num("hidden", 48usize).unwrap(), 48);
        assert!(a.req("missing").is_err());
    }

    #[test]
    fn args_reject_bad_forms() {
        assert!(Args::parse(&argv(&["trace", "t.csv"])).is_err());
        let a = Args::parse(&argv(&["--epochs", "abc"])).unwrap();
        assert!(a.num("epochs", 0usize).is_err());
    }

    #[test]
    fn args_boolean_flags() {
        // A valueless `--switch` (trailing, or followed by another option)
        // parses as a boolean flag.
        let a = Args::parse(&argv(&["--report", "--trace", "t.csv"])).unwrap();
        assert!(a.flag("report"));
        assert!(!a.flag("json"));
        assert_eq!(a.req("trace").unwrap(), "t.csv");
        let a = Args::parse(&argv(&["--trace", "t.csv", "--report"])).unwrap();
        assert!(a.flag("report"));
        assert_eq!(a.req("trace").unwrap(), "t.csv");
    }

    #[test]
    fn train_checkpoints_and_resumes() {
        let dir = std::env::temp_dir().join(format!("cloudgen-cli-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.csv");
        let model_path = dir.join("m.json");
        let ckpt_dir = dir.join("ckpts");
        let tp = trace_path.to_str().unwrap();
        let mp = model_path.to_str().unwrap();
        let cd = ckpt_dir.to_str().unwrap();

        run(&argv(&["demo-trace", "--out", tp, "--days", "2", "--seed", "3"])).unwrap();
        let msg = run(&argv(&[
            "train", "--trace", tp, "--out", mp, "--epochs", "1", "--hidden", "12",
            "--checkpoint-dir", cd,
        ]))
        .unwrap();
        assert!(msg.contains("checkpoints saved"), "{msg}");

        // Re-running against a populated checkpoint directory without
        // --resume must refuse rather than silently reuse old state.
        let err = run(&argv(&[
            "train", "--trace", tp, "--out", mp, "--epochs", "1", "--hidden", "12",
            "--checkpoint-dir", cd,
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--resume"), "{err}");

        // With --resume the finished run loads its final checkpoint.
        let msg = run(&argv(&[
            "train", "--trace", tp, "--out", mp, "--epochs", "1", "--hidden", "12",
            "--checkpoint-dir", cd, "--resume",
        ]))
        .unwrap();
        assert!(msg.contains("resumed from epoch 1"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_workflow_in_tempdir() {
        let dir = std::env::temp_dir().join(format!("cloudgen-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.csv");
        let model_path = dir.join("m.json");
        let out_path = dir.join("future.csv");
        let tp = trace_path.to_str().unwrap();

        // demo-trace
        let msg = run(&argv(&["demo-trace", "--out", tp, "--days", "2", "--seed", "3"])).unwrap();
        assert!(msg.contains("wrote"), "{msg}");

        // summarize
        let msg = run(&argv(&["summarize", "--trace", tp])).unwrap();
        assert!(msg.contains("batches"), "{msg}");

        // train (tiny budget)
        let msg = run(&argv(&[
            "train", "--trace", tp, "--out", model_path.to_str().unwrap(),
            "--epochs", "1", "--hidden", "12",
        ]))
        .unwrap();
        assert!(msg.contains("model saved"), "{msg}");

        // generate
        let msg = run(&argv(&[
            "generate", "--model", model_path.to_str().unwrap(),
            "--out", out_path.to_str().unwrap(), "--periods", "48",
        ]))
        .unwrap();
        assert!(msg.contains("generated"), "{msg}");
        // Output parses back.
        let catalog = FlavorCatalog::azure16();
        let f = std::fs::File::open(&out_path).unwrap();
        let t = trace::io::read_csv(f, catalog).unwrap();
        // Trace may be empty for an unlucky tiny model, but must parse.
        let _ = t.len();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_workflow_end_to_end() {
        let dir =
            std::env::temp_dir().join(format!("cloudgen-telemetry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.csv");
        let model_path = dir.join("m.json");
        let out_path = dir.join("future.csv");
        let jsonl_path = dir.join("run.jsonl");
        let tp = trace_path.to_str().unwrap();
        let jl = jsonl_path.to_str().unwrap();

        run(&argv(&["demo-trace", "--out", tp, "--days", "2", "--seed", "5"])).unwrap();

        // train with telemetry + inline report.
        let msg = run(&argv(&[
            "train", "--trace", tp, "--out", model_path.to_str().unwrap(),
            "--epochs", "2", "--hidden", "12", "--telemetry", jl, "--report",
        ]))
        .unwrap();
        assert!(msg.contains(" ms;"), "{msg}");
        assert!(msg.contains("run report"), "{msg}");
        assert!(msg.contains("p95-ms"), "{msg}");

        // Two stages x two epochs, each carrying the pre-clip grad norm.
        let raw = std::fs::read_to_string(jl).unwrap();
        assert!(raw.lines().all(|l| l.contains("\"type\"")), "{raw}");
        let events = obsv::read_jsonl(jl).unwrap();
        let epochs: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::Epoch(ep) => Some(ep),
                _ => None,
            })
            .collect();
        assert_eq!(epochs.len(), 4, "{epochs:?}");
        assert_eq!(epochs.iter().filter(|e| e.stage == "flavor").count(), 2);
        assert_eq!(epochs.iter().filter(|e| e.stage == "lifetime").count(), 2);
        assert!(epochs.iter().all(|e| e.grad_norm_pre_clip > 0.0), "{epochs:?}");
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Span(s) if s.name == "arrivals_fit")));

        // generate appends throughput events to the same file.
        run(&argv(&[
            "generate", "--model", model_path.to_str().unwrap(),
            "--out", out_path.to_str().unwrap(), "--periods", "48",
            "--telemetry", jl,
        ]))
        .unwrap();
        let events = obsv::read_jsonl(jl).unwrap();
        assert!(
            events.iter().any(|e| matches!(e, Event::Gen(_))),
            "{events:?}"
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, Event::Epoch(_)))
                .count(),
            4
        );

        // report reconstructs both sections from the file.
        let table = run(&argv(&["report", jl])).unwrap();
        assert!(table.contains("flavor"), "{table}");
        assert!(table.contains("lifetime"), "{table}");
        assert!(table.contains("p95-ms"), "{table}");
        assert!(table.contains("generation"), "{table}");
        let json = run(&argv(&["report", jl, "--json"])).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(parsed.get("stages").is_some(), "{json}");
        // --file spelling works too.
        let table2 = run(&argv(&["report", "--file", jl])).unwrap();
        assert_eq!(table, table2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_trace_captures_nested_training_spans() {
        let dir = std::env::temp_dir().join(format!("cloudgen-cli-prof-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let tp = dir.join("t.csv");
        let tp = tp.to_str().unwrap();
        let mp = dir.join("m.json");
        let trace_out = dir.join("prof.json");

        run(&argv(&["demo-trace", "--out", tp, "--days", "2", "--seed", "3"])).unwrap();
        let msg = run(&argv(&[
            "train", "--trace", tp, "--out", mp.to_str().unwrap(),
            "--epochs", "1", "--hidden", "12", "--threads", "2",
            "--profile-trace", trace_out.to_str().unwrap(), "--report",
        ]))
        .unwrap();
        assert!(msg.contains("profile trace:"), "{msg}");
        assert!(msg.contains("profile (by self-time)"), "{msg}");

        // The trace file is valid Chrome trace JSON with the nested
        // train -> epoch -> minibatch -> kernel hierarchy intact.
        let raw = std::fs::read_to_string(&trace_out).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&raw).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        let name_of = |e: &serde_json::Value| e["name"].as_str().unwrap().to_string();
        let complete: Vec<&serde_json::Value> =
            events.iter().filter(|e| e["ph"] == "X").collect();
        let by_id: BTreeMap<i64, &serde_json::Value> = complete
            .iter()
            .map(|e| (e["args"]["id"].as_i64().unwrap(), *e))
            .collect();
        let parent_name = |e: &serde_json::Value| {
            e["args"]["parent"]
                .as_i64()
                .map(|p| name_of(by_id[&p]))
        };
        for expected in ["train", "epoch", "minibatch", "gemm", "lstm-fwd", "lstm-bwd", "adam-step"] {
            assert!(
                complete.iter().any(|e| name_of(e) == expected),
                "missing span {expected}"
            );
        }
        // Spot-check the chain: every epoch sits under a train span, every
        // minibatch under an epoch, every adam-step under a minibatch.
        for (child, parent) in [("epoch", "train"), ("minibatch", "epoch"), ("adam-step", "minibatch")] {
            assert!(
                complete
                    .iter()
                    .filter(|e| name_of(e) == child)
                    .all(|e| parent_name(e).as_deref() == Some(parent)),
                "{child} spans not parented under {parent}"
            );
        }
        // Worker lanes exist: with --threads 2 some span ran off lane 0.
        assert!(
            complete.iter().any(|e| e["tid"].as_i64().unwrap() != 0),
            "no worker-lane spans recorded"
        );
        // Kernel spans carry work accounting.
        assert!(
            complete
                .iter()
                .filter(|e| name_of(e) == "gemm")
                .all(|e| e["args"]["flops"].as_i64().unwrap() > 0),
            "gemm spans missing flop counts"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_and_generate_are_thread_count_invariant() {
        let dir = std::env::temp_dir().join(format!("cloudgen-cli-threads-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let tp = dir.join("t.csv");
        let tp = tp.to_str().unwrap();
        run(&argv(&["demo-trace", "--out", tp, "--days", "2", "--seed", "3"])).unwrap();

        let m1 = dir.join("m1.json");
        let m3 = dir.join("m3.json");
        for (model, threads) in [(&m1, "1"), (&m3, "3")] {
            run(&argv(&[
                "train", "--trace", tp, "--out", model.to_str().unwrap(),
                "--epochs", "1", "--hidden", "12", "--threads", threads,
            ]))
            .unwrap();
        }
        assert_eq!(
            std::fs::read(&m1).unwrap(),
            std::fs::read(&m3).unwrap(),
            "saved model must not depend on --threads"
        );

        let f1 = dir.join("f1.csv");
        let f4 = dir.join("f4.csv");
        for (out, threads) in [(&f1, "1"), (&f4, "4")] {
            run(&argv(&[
                "generate", "--model", m1.to_str().unwrap(),
                "--out", out.to_str().unwrap(), "--periods", "600",
                "--seed", "11", "--threads", threads,
            ]))
            .unwrap();
        }
        assert_eq!(
            std::fs::read(&f1).unwrap(),
            std::fs::read(&f4).unwrap(),
            "generated trace must not depend on --threads"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_command_shows_usage() {
        let err = run(&argv(&["frobnicate"])).unwrap_err();
        assert!(err.0.contains("USAGE"), "{err}");
    }
}
