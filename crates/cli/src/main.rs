//! `cloudgen` command-line entry point.

#![forbid(unsafe_code)]

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match cloudgen_cli::run(&argv) {
        Ok(msg) => println!("{msg}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
