//! Configuration of the synthetic cloud world.

use serde::{Deserialize, Serialize};

/// Workload-level trend over days.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrendSpec {
    /// Multiplicative growth per day, e.g. `0.01` for +1 %/day.
    pub growth_per_day: f64,
    /// Day after which growth stops (workload levels off); `None` grows
    /// forever.
    pub levels_off_at_day: Option<u32>,
}

impl TrendSpec {
    /// No trend.
    pub fn flat() -> Self {
        Self {
            growth_per_day: 0.0,
            levels_off_at_day: None,
        }
    }

    /// The arrival-rate multiplier for a given day of history.
    pub fn factor(&self, day: u32) -> f64 {
        let effective = match self.levels_off_at_day {
            Some(cap) => day.min(cap),
            None => day,
        };
        (1.0 + self.growth_per_day).powi(effective as i32)
    }
}

/// The lifetime regimes batches draw from.
///
/// Each regime is a typical duration scale in seconds; jobs in a batch take
/// the batch's regime scale times a log-normal jitter. Mixture weights are
/// flavor-dependent (see [`WorldConfig::regime_weights`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeRegimes {
    /// Scales in seconds, shortest to longest.
    pub scales: [f64; 4],
    /// Log-normal sigma of per-job jitter around the regime scale.
    pub jitter_sigma: f64,
}

impl Default for LifetimeRegimes {
    fn default() -> Self {
        Self {
            // ~10 min, ~2 h, ~1 d, ~12 d.
            scales: [600.0, 7_200.0, 86_400.0, 1_036_800.0],
            jitter_sigma: 0.45,
        }
    }
}

/// Full configuration of a synthetic cloud world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of flavors in the catalog.
    pub n_flavors: usize,
    /// Number of users in the population.
    pub n_users: usize,
    /// Baseline mean batches per 5-minute period (before modulation).
    pub base_batch_rate: f64,
    /// Relative amplitude of the hour-of-day cycle (0 = none).
    pub hod_amplitude: f64,
    /// Weekend arrival multiplier (e.g. 0.6 = 40 % fewer on weekends).
    pub weekend_factor: f64,
    /// Long-run workload trend.
    pub trend: TrendSpec,
    /// Geometric parameter for batch size (`size = 1 + Geometric(p)`).
    pub batch_size_p: f64,
    /// Probability a batch uses its user's characteristic size instead of a
    /// fresh geometric draw. Real users resubmit the same job counts; this
    /// is what makes end-of-batch timing learnable from context.
    pub size_fidelity: f64,
    /// Probability a batch is a "burst" whose size is multiplied ~10x.
    pub burst_prob: f64,
    /// Zipf exponent for global flavor popularity.
    pub flavor_zipf: f64,
    /// Zipf exponent for user activity.
    pub user_zipf: f64,
    /// Probability a batch uses the user's primary flavor (vs. a secondary).
    pub user_flavor_focus: f64,
    /// Probability a job repeats the previous job's flavor within a batch.
    pub within_batch_repeat: f64,
    /// Probability a batch keeps the same lifetime regime as the user's
    /// previous batch (regime persistence across batches).
    pub regime_persistence: f64,
    /// Probability the next batch comes from the same user as the previous
    /// one (bursty user sessions): users submit runs of related batches, so
    /// consecutive batches in the arrival sequence correlate — the
    /// cross-batch momentum the paper's Figure 1 shows.
    pub user_session_persistence: f64,
    /// Probability a job's lifetime exactly repeats its batch's anchor
    /// lifetime. Real batch VMs are created and deleted together, so
    /// within-batch lifetimes are near-identical.
    pub lifetime_repeat: f64,
    /// Probability a batch's anchor lifetime reuses the user's
    /// characteristic duration for the regime (users rerun the same
    /// workloads with the same durations) instead of a fresh draw.
    pub anchor_fidelity: f64,
    /// Log-normal sigma of a per-day arrival-level factor (day-to-day level
    /// shifts beyond seasonality; this is what day-of-history features and
    /// DOH sampling exist to capture).
    pub daily_noise_sigma: f64,
    /// Lifetime regime scales and jitter.
    pub regimes: LifetimeRegimes,
}

impl WorldConfig {
    /// Azure-like preset: 16 flavors, strong diurnal pattern, no trend.
    ///
    /// `scale` multiplies the arrival rate; `1.0` gives on the order of a
    /// thousand jobs per day — big enough for every correlation to be
    /// measurable, small enough for CPU-only training.
    pub fn azure_like(scale: f64) -> Self {
        Self {
            n_flavors: 16,
            n_users: 400,
            base_batch_rate: 2.0 * scale,
            hod_amplitude: 0.45,
            weekend_factor: 0.65,
            trend: TrendSpec::flat(),
            batch_size_p: 0.45,
            size_fidelity: 0.85,
            burst_prob: 0.02,
            flavor_zipf: 1.1,
            user_zipf: 1.05,
            user_flavor_focus: 0.85,
            within_batch_repeat: 0.92,
            regime_persistence: 0.45,
            user_session_persistence: 0.5,
            lifetime_repeat: 0.9,
            anchor_fidelity: 0.7,
            daily_noise_sigma: 0.3,
            regimes: LifetimeRegimes::default(),
        }
    }

    /// Huawei-like preset: many flavors, lower rate, strong growth that
    /// levels off (the §6.1 change-point), weaker diurnal pattern.
    pub fn huawei_like(scale: f64) -> Self {
        Self {
            n_flavors: 259,
            n_users: 700,
            base_batch_rate: 0.8 * scale,
            hod_amplitude: 0.3,
            weekend_factor: 0.8,
            trend: TrendSpec {
                growth_per_day: 0.012,
                levels_off_at_day: Some(55),
            },
            batch_size_p: 0.35,
            size_fidelity: 0.9,
            burst_prob: 0.03,
            flavor_zipf: 1.25,
            user_zipf: 1.1,
            user_flavor_focus: 0.88,
            within_batch_repeat: 0.95,
            regime_persistence: 0.5,
            user_session_persistence: 0.55,
            lifetime_repeat: 0.92,
            anchor_fidelity: 0.75,
            daily_noise_sigma: 0.12,
            regimes: LifetimeRegimes {
                // Huawei VMs skew longer-lived.
                scales: [900.0, 14_400.0, 172_800.0, 1_296_000.0],
                jitter_sigma: 0.4,
            },
        }
    }

    /// Hour-of-day arrival multiplier: a raised cosine peaking mid-day.
    pub fn hod_factor(&self, hour: u8) -> f64 {
        let phase = (hour as f64 - 14.0) / 24.0 * std::f64::consts::TAU;
        1.0 + self.hod_amplitude * phase.cos()
    }

    /// Day-of-week arrival multiplier (days 5, 6 are the weekend).
    pub fn dow_factor(&self, dow: u8) -> f64 {
        if dow >= 5 {
            self.weekend_factor
        } else {
            1.0
        }
    }

    /// Regime mixture weights for a flavor.
    ///
    /// Two planted effects make the per-flavor Kaplan–Meier beat the pooled
    /// one: small flavors skew ephemeral/short while large flavors skew
    /// medium/long, and each flavor additionally has an idiosyncratic
    /// preferred regime (real flavors exist *because* specific workloads —
    /// with specific lifetime profiles — request them).
    pub fn regime_weights(&self, flavor_id: u16, vcpus: f64) -> [f64; 4] {
        let size = (vcpus.log2() / 3.0).clamp(0.0, 1.0); // 1 vCPU -> 0, 8+ -> 1
        let mut w = [
            0.55 * (1.0 - size) + 0.04,
            0.30 * (1.0 - size) + 0.06,
            0.10 + 0.35 * size,
            0.05 + 0.45 * size,
        ];
        // Idiosyncratic tilt: deterministic per flavor.
        let preferred = (flavor_id as usize).wrapping_mul(2654435761) % 4;
        w[preferred] *= 6.0;
        let total: f64 = w.iter().sum();
        w.iter_mut().for_each(|x| *x /= total);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_trend_is_one() {
        let t = TrendSpec::flat();
        assert_eq!(t.factor(0), 1.0);
        assert_eq!(t.factor(100), 1.0);
    }

    #[test]
    fn growth_levels_off() {
        let t = TrendSpec {
            growth_per_day: 0.01,
            levels_off_at_day: Some(10),
        };
        assert!(t.factor(5) < t.factor(10));
        assert_eq!(t.factor(10), t.factor(50));
        assert!((t.factor(10) - 1.01f64.powi(10)).abs() < 1e-12);
    }

    #[test]
    fn hod_peaks_midday() {
        let c = WorldConfig::azure_like(1.0);
        assert!(c.hod_factor(14) > c.hod_factor(2));
        assert!((c.hod_factor(14) - (1.0 + c.hod_amplitude)).abs() < 1e-12);
    }

    #[test]
    fn weekend_reduces_arrivals() {
        let c = WorldConfig::azure_like(1.0);
        assert!(c.dow_factor(6) < c.dow_factor(2));
    }

    #[test]
    fn regime_weights_shift_with_size() {
        let c = WorldConfig::azure_like(1.0);
        // Average over flavor ids to isolate the size effect from the
        // idiosyncratic tilt.
        let avg = |vcpus: f64| -> [f64; 4] {
            let mut acc = [0.0; 4];
            for f in 0..16u16 {
                let w = c.regime_weights(f, vcpus);
                for i in 0..4 {
                    acc[i] += w[i] / 16.0;
                }
            }
            acc
        };
        let small = avg(1.0);
        let large = avg(64.0);
        // Small flavors: more ephemeral. Large: more long-lived.
        assert!(small[0] > large[0]);
        assert!(large[3] > small[3]);
        // Weights are positive.
        assert!(small.iter().chain(large.iter()).all(|&w| w > 0.0));
    }

    #[test]
    fn presets_are_plausible() {
        let a = WorldConfig::azure_like(1.0);
        let h = WorldConfig::huawei_like(1.0);
        assert_eq!(a.n_flavors, 16);
        assert_eq!(h.n_flavors, 259);
        assert!(h.base_batch_rate < a.base_batch_rate);
        assert!(h.trend.growth_per_day > 0.0);
    }
}
