//! Synthetic cloud-provider world: the data substrate.
//!
//! The paper trains and evaluates on two proprietary production traces
//! (Microsoft Azure and Huawei Cloud). Neither is available here, so this
//! crate implements a *ground-truth simulator* that plants exactly the
//! correlational structures the paper documents in those traces:
//!
//! - **user-specific batches**: jobs arrive in per-user bursts within
//!   5-minute periods, with heavy-tailed batch sizes;
//! - **flavor momentum**: jobs within a batch overwhelmingly share a flavor,
//!   and users have stable flavor preferences across batches (this is the
//!   "reuse distance" structure Protean exploits);
//! - **correlated lifetimes**: each batch draws a lifetime *regime*
//!   (ephemeral / short / medium / long), flavors bias the regime mixture,
//!   and job lifetimes scatter around the regime scale — so neighbouring
//!   jobs have similar lifetimes, exactly the inter-case correlation the
//!   paper's lifetime LSTM is built to capture;
//! - **seasonality and trend**: hour-of-day and day-of-week modulation of
//!   the batch arrival rate, plus a configurable growth trend with a
//!   level-off change-point (the Huawei-like preset grows then flattens,
//!   which is what makes whole-history baselines stale in §6.1);
//! - **censoring**: generated jobs carry true end times; observation windows
//!   (from the `trace` crate) apply left/right censoring exactly as §3
//!   describes.
//!
//! Presets: [`WorldConfig::azure_like`] (16 flavors, 30-day history, higher
//! arrival rates) and [`WorldConfig::huawei_like`] (many flavors, lower
//! rates, long history, growth + level-off). Both take a `scale` knob so the
//! reproduction binaries can run at laptop scale.

#![forbid(unsafe_code)]

pub mod config;
pub mod world;

pub use config::{LifetimeRegimes, TrendSpec, WorldConfig};
pub use world::CloudWorld;
