//! The ground-truth workload generator.

use crate::config::WorldConfig;
use glm::samplers::{sample_categorical, sample_geometric, sample_poisson};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trace::period::{TemporalInfo, PERIOD_SECS};
use trace::{FlavorCatalog, FlavorId, Job, Trace, UserId};

/// A user's stable behavioural profile.
#[derive(Debug, Clone)]
struct UserProfile {
    primary: FlavorId,
    secondary: Vec<FlavorId>,
    /// Characteristic batch size (users tend to resubmit the same counts).
    pref_size: u64,
    /// Characteristic per-regime lifetime multiplier (users rerun the same
    /// workloads with the same durations).
    pref_jitter: [f64; 4],
    /// Regime of this user's previous batch (for persistence).
    last_regime: Option<usize>,
}

/// A synthetic cloud provider: holds the configuration and generates
/// ground-truth traces with planted inter-job correlations.
#[derive(Debug, Clone)]
pub struct CloudWorld {
    config: WorldConfig,
    catalog: FlavorCatalog,
    user_weights: Vec<f64>,
    flavor_weights: Vec<f64>,
    seed: u64,
}

impl CloudWorld {
    /// Creates a world from a configuration and a seed.
    ///
    /// The seed fixes both the static structure (user preferences) and the
    /// generated trace, so a `(config, seed)` pair is fully reproducible.
    pub fn new(config: WorldConfig, seed: u64) -> Self {
        let catalog = if config.n_flavors == 16 {
            FlavorCatalog::azure16()
        } else {
            FlavorCatalog::synthetic(config.n_flavors)
        };
        let flavor_weights: Vec<f64> = (1..=config.n_flavors)
            .map(|i| 1.0 / (i as f64).powf(config.flavor_zipf))
            .collect();
        let user_weights: Vec<f64> = (1..=config.n_users)
            .map(|i| 1.0 / (i as f64).powf(config.user_zipf))
            .collect();
        Self {
            config,
            catalog,
            user_weights,
            flavor_weights,
            seed,
        }
    }

    /// The world's flavor catalog.
    pub fn catalog(&self) -> &FlavorCatalog {
        &self.catalog
    }

    /// The configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Generates the ground-truth trace covering `[0, days)` days.
    ///
    /// Every job has a known true end time; apply an
    /// [`trace::ObservationWindow`] to censor it the way a real collection
    /// window would.
    pub fn generate(&self, days: u32) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut users = self.build_users(&mut rng);
        let periods_per_day = 86_400 / PERIOD_SECS;
        let n_periods = days as u64 * periods_per_day;

        // Per-day level factors: persistent day-to-day shifts beyond the
        // seasonal pattern (drawn once per day from a log-normal).
        let day_factors: Vec<f64> = (0..days)
            .map(|_| (self.config.daily_noise_sigma * sample_standard_normal(&mut rng)).exp())
            .collect();

        let mut jobs: Vec<Job> = Vec::new();
        let mut last_user: Option<usize> = None;
        for p in 0..n_periods {
            let info = TemporalInfo::of_period(p);
            let rate = self.config.base_batch_rate
                * self.config.hod_factor(info.hour_of_day())
                * self.config.dow_factor(info.day_of_week())
                * self.config.trend.factor(info.day_of_history())
                * day_factors[info.day_of_history() as usize];
            let n_batches = sample_poisson(rate, &mut rng);
            let t = p * PERIOD_SECS;
            for _ in 0..n_batches {
                // Bursty sessions: often the same user as the previous batch.
                let user_idx = match last_user {
                    Some(u) if rng.gen::<f64>() < self.config.user_session_persistence => u,
                    _ => sample_categorical(&self.user_weights, &mut rng),
                };
                last_user = Some(user_idx);
                self.generate_batch(t, user_idx, &mut users, &mut jobs, &mut rng);
            }
        }
        Trace::new(jobs, self.catalog.clone())
    }

    fn build_users(&self, rng: &mut StdRng) -> Vec<UserProfile> {
        (0..self.config.n_users)
            .map(|_| {
                let primary = FlavorId(sample_categorical(&self.flavor_weights, rng) as u16);
                let n_secondary = 1 + rng.gen_range(0..3);
                let secondary = (0..n_secondary)
                    .map(|_| FlavorId(sample_categorical(&self.flavor_weights, rng) as u16))
                    .collect();
                let pref_size = 1 + sample_geometric(self.config.batch_size_p, rng);
                let pref_jitter = [(); 4].map(|_| {
                    (self.config.regimes.jitter_sigma * sample_standard_normal(rng)).exp()
                });
                UserProfile {
                    primary,
                    secondary,
                    pref_size,
                    pref_jitter,
                    last_regime: None,
                }
            })
            .collect()
    }

    fn generate_batch(
        &self,
        t: u64,
        user_idx: usize,
        users: &mut [UserProfile],
        jobs: &mut Vec<Job>,
        rng: &mut StdRng,
    ) {
        let cfg = &self.config;
        // Batch size: usually the user's characteristic size, sometimes a
        // fresh geometric draw, with occasional bursts.
        let mut size = if rng.gen::<f64>() < cfg.size_fidelity {
            users[user_idx].pref_size
        } else {
            1 + sample_geometric(cfg.batch_size_p, rng)
        };
        if rng.gen::<f64>() < cfg.burst_prob {
            size = (size * rng.gen_range(5..15)).min(200);
        }

        // Batch flavor anchor: the user's primary (usually) or a secondary.
        let user = &users[user_idx];
        let anchor = if rng.gen::<f64>() < cfg.user_flavor_focus || user.secondary.is_empty() {
            user.primary
        } else {
            user.secondary[rng.gen_range(0..user.secondary.len())]
        };

        // Batch lifetime regime: persist the user's previous regime with
        // probability `regime_persistence`, else draw from the flavor's
        // regime mixture.
        let regime = match users[user_idx].last_regime {
            Some(r) if rng.gen::<f64>() < cfg.regime_persistence => r,
            _ => {
                let weights = cfg.regime_weights(anchor.0, self.catalog.get(anchor).vcpus);
                sample_categorical(&weights, rng)
            }
        };
        users[user_idx].last_regime = Some(regime);

        // Batch anchor lifetime: VMs created together are usually deleted
        // together, so most jobs repeat this exact duration — and users
        // usually rerun workloads with their characteristic duration.
        let scale = cfg.regimes.scales[regime];
        let anchor_jitter = if rng.gen::<f64>() < cfg.anchor_fidelity {
            users[user_idx].pref_jitter[regime]
        } else {
            (cfg.regimes.jitter_sigma * sample_standard_normal(rng)).exp()
        };
        let anchor_lifetime = quantize_lifetime(scale * anchor_jitter);

        let mut prev_flavor = anchor;
        for _ in 0..size {
            // Flavor momentum within the batch.
            let flavor = if rng.gen::<f64>() < cfg.within_batch_repeat {
                prev_flavor
            } else if rng.gen::<f64>() < 0.5 {
                anchor
            } else {
                FlavorId(sample_categorical(&self.flavor_weights, rng) as u16)
            };
            prev_flavor = flavor;

            let lifetime = if rng.gen::<f64>() < cfg.lifetime_repeat {
                anchor_lifetime
            } else {
                let jitter = (cfg.regimes.jitter_sigma * sample_standard_normal(rng)).exp();
                quantize_lifetime(scale * jitter)
            };
            jobs.push(Job {
                start: t,
                end: Some(t + lifetime),
                flavor,
                user: UserId(user_idx as u32),
            });
        }
    }
}

/// Quantizes a lifetime in seconds to 5-minute periods (minimum one period,
/// as in the Azure trace).
fn quantize_lifetime(secs: f64) -> u64 {
    // lint:allow(lossy-cast): sampled lifetimes are finite and positive by construction
    ((secs / PERIOD_SECS as f64).round() as u64).max(1) * PERIOD_SECS
}

/// Standard normal sample via Box–Muller (avoids a `rand_distr` dependency).
fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::batch::organize_periods;
    use trace::stats::arrivals_per_period;
    use trace::ObservationWindow;

    fn small_world() -> CloudWorld {
        CloudWorld::new(WorldConfig::azure_like(1.0), 7)
    }

    #[test]
    fn generation_is_deterministic() {
        let w = small_world();
        let a = w.generate(2);
        let b = w.generate(2);
        assert_eq!(a, b);
        let c = CloudWorld::new(WorldConfig::azure_like(1.0), 8).generate(2);
        assert_ne!(a, c);
    }

    #[test]
    fn produces_reasonable_volume() {
        let t = small_world().generate(3);
        // ~2 batches/period * ~2 jobs/batch * 288 periods/day * 3 days.
        assert!(t.len() > 1000, "only {} jobs", t.len());
        assert!(t.len() < 50_000, "{} jobs", t.len());
    }

    #[test]
    fn jobs_are_sorted_and_quantized() {
        let t = small_world().generate(2);
        for j in &t.jobs {
            assert_eq!(j.start % PERIOD_SECS, 0);
            let e = j.end.expect("ground truth has ends");
            assert_eq!(e % PERIOD_SECS, 0);
            assert!(e > j.start);
        }
    }

    #[test]
    fn flavor_momentum_is_planted() {
        // Consecutive jobs by the same user in the same period share flavors
        // far more often than global flavor frequency would predict.
        let t = small_world().generate(5);
        let periods = organize_periods(&t);
        let mut same = 0usize;
        let mut total = 0usize;
        for p in &periods {
            for b in &p.batches {
                for w in b.jobs.windows(2) {
                    total += 1;
                    if t.jobs[w[0]].flavor == t.jobs[w[1]].flavor {
                        same += 1;
                    }
                }
            }
        }
        assert!(total > 100, "not enough multi-job batches: {total}");
        let rate = same as f64 / total as f64;
        assert!(rate > 0.8, "within-batch repeat rate {rate}");
    }

    #[test]
    fn lifetimes_are_correlated_within_batches() {
        // Log-lifetime variance within batches must be far below global.
        let t = small_world().generate(5);
        let periods = organize_periods(&t);
        let logs: Vec<f64> = t
            .jobs
            .iter()
            .map(|j| ((j.end.unwrap() - j.start) as f64).ln())
            .collect();
        let mean = logs.iter().sum::<f64>() / logs.len() as f64;
        let global_var =
            logs.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / logs.len() as f64;

        let mut within = 0.0;
        let mut n = 0usize;
        for p in &periods {
            for b in p.batches.iter().filter(|b| b.len() >= 2) {
                let ls: Vec<f64> = b.jobs.iter().map(|&i| logs[i]).collect();
                let m = ls.iter().sum::<f64>() / ls.len() as f64;
                within += ls.iter().map(|l| (l - m) * (l - m)).sum::<f64>();
                n += ls.len();
            }
        }
        let within_var = within / n as f64;
        assert!(
            within_var < global_var * 0.5,
            "within {within_var} vs global {global_var}"
        );
    }

    #[test]
    fn seasonality_is_planted() {
        let t = small_world().generate(7);
        let arrivals = arrivals_per_period(&t, 7 * 288);
        // Compare 2pm-hour arrivals to 2am-hour arrivals across weekdays.
        let mut peak = 0.0;
        let mut trough = 0.0;
        for day in 0..7 {
            for slot in 0..12 {
                peak += arrivals[(day * 288 + 14 * 12 + slot) as usize];
                trough += arrivals[(day * 288 + 2 * 12 + slot) as usize];
            }
        }
        assert!(peak > trough * 1.3, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn huawei_preset_grows_then_levels() {
        let w = CloudWorld::new(WorldConfig::huawei_like(2.0), 11);
        let t = w.generate(70);
        let arrivals = arrivals_per_period(&t, 70 * 288);
        let week_sum = |start_day: u64| -> f64 {
            arrivals[(start_day * 288) as usize..((start_day + 7) * 288) as usize]
                .iter()
                .sum()
        };
        let early = week_sum(0);
        let mid = week_sum(40);
        let late = week_sum(60);
        assert!(mid > early * 1.2, "no growth: {early} -> {mid}");
        // After level-off at day 55, growth stops (allow 15% noise).
        assert!((late / mid) < 1.3, "still growing: {mid} -> {late}");
    }

    #[test]
    fn censoring_after_window_application() {
        let t = small_world().generate(10);
        let w = ObservationWindow::new(0, 5 * 86_400);
        let censored = w.apply(&t);
        let frac = censored.censored_fraction();
        // Some long-lived VMs must run past a 5-day window, but most VMs are
        // short-lived.
        assert!(frac > 0.005, "censored fraction {frac}");
        assert!(frac < 0.5, "censored fraction {frac}");
    }

    #[test]
    fn big_flavors_live_longer() {
        let t = CloudWorld::new(WorldConfig::azure_like(2.0), 3).generate(7);
        let mut small_sum = 0.0;
        let mut small_n = 0.0;
        let mut big_sum = 0.0;
        let mut big_n = 0.0;
        for j in &t.jobs {
            let f = t.catalog.get(j.flavor);
            let life = (j.end.unwrap() - j.start) as f64;
            if f.vcpus <= 1.0 {
                small_sum += life;
                small_n += 1.0;
            } else if f.vcpus >= 8.0 {
                big_sum += life;
                big_n += 1.0;
            }
        }
        assert!(small_n > 50.0 && big_n > 50.0, "{small_n} vs {big_n}");
        assert!(
            big_sum / big_n > small_sum / small_n,
            "big flavors should outlive small ones"
        );
    }
}
