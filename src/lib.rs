//! Umbrella crate for the `cloudgen` workspace.
//!
//! This package exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. It re-exports the public crates
//! of the workspace so examples can use a single dependency.

#![forbid(unsafe_code)]

pub use cloudgen;
pub use eval;
pub use glm;
pub use linalg;
pub use nn;
pub use sched;
pub use survival;
pub use synth;
pub use trace;
